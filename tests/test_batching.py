"""LocoFS-B write-behind batching: client queue semantics, the Batch
command on both engines, amortized multi-op metering, and WAL group
commit."""

import os

import pytest

from repro.common.config import BatchConfig, ClusterConfig
from repro.common.errors import Exists
from repro.core.client import BatchingLocoClient
from repro.core.fs import LocoFS
from repro.harness import make_system, run_throughput
from repro.kv.btree import BTreeStore
from repro.kv.hashdb import HashStore
from repro.kv.meter import Meter
from repro.kv.wal import OP_PUT, WriteAheadLog
from repro.sim.costmodel import CostModel, KVCostPolicy


def batched_fs(engine_kind="direct", num_servers=4, **batch_kw):
    cfg = ClusterConfig(num_metadata_servers=num_servers,
                        batch=BatchConfig(enabled=True, **batch_kw))
    return LocoFS(cfg, engine_kind=engine_kind)


class TestWriteBehindQueue:
    def test_batch_config_gates_client_class(self):
        assert isinstance(batched_fs().client(), BatchingLocoClient)
        plain = LocoFS(ClusterConfig(num_metadata_servers=4))
        assert not isinstance(plain.client(), BatchingLocoClient)

    def test_create_is_deferred_until_flush(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        for n in range(6):
            assert c.create(f"/d/f{n}") is None  # uuid unknown while queued
        assert c.pending_ops == 6
        assert fs.total_files() == 0
        c.flush()
        assert c.pending_ops == 0
        assert fs.total_files() == 6

    def test_read_your_writes_stat(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/pending")
        st = c.stat_file("/d/pending")  # barrier flushes the owning queue
        assert st is not None
        assert c.pending_ops == 0

    def test_stat_flushes_only_the_owning_server(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        for n in range(12):
            c.create(f"/d/f{n}")
        before = c.pending_ops
        c.stat_file("/d/f0")
        after = c.pending_ops
        assert 0 < after < before  # one FMS queue drained, others untouched

    def test_readdir_flushes_pending_entries_of_that_dir(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        names = [f"f{n}" for n in range(8)]
        for n in names:
            c.create(f"/d/{n}")
        assert sorted(e.name for e in c.readdir("/d")) == sorted(names)
        assert c.pending_ops == 0

    def test_unlink_sees_pending_create(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.unlink("/d/f")
        c.flush()
        assert fs.total_files() == 0

    def test_duplicate_in_pending_window_raises_client_side(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        with pytest.raises(Exists):
            c.create("/d/f")

    def test_deferred_duplicate_surfaces_at_flush(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.flush()
        c.create("/d/f")  # queue is clean, so this defers again
        with pytest.raises(Exists):
            c.flush()

    def test_op_budget_triggers_flush(self):
        fs = batched_fs(num_servers=1, max_ops=3)
        c = fs.client()
        c.mkdir("/d")
        depths = []
        for n in range(9):
            c.create(f"/d/f{n}")
            depths.append(c.pending_ops)
        # single FMS: the queue cycles 1, 2, flush-at-3 → 0
        assert depths == [1, 2, 0, 1, 2, 0, 1, 2, 0]
        assert fs.total_files() == 9

    def test_byte_budget_triggers_flush(self):
        fs = batched_fs(max_ops=1000, max_bytes=120)
        c = fs.client()
        c.mkdir("/d")
        # ~50 modeled bytes per create: the third enqueue to any one FMS
        # crosses 120 and ships the queue
        for n in range(20):
            c.create(f"/d/f{n}")
        assert c.pending_ops < 20
        c.flush()
        assert fs.total_files() == 20

    def test_age_bound_triggers_flush(self):
        fs = batched_fs(max_ops=1000, max_age_us=1.0)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        assert c.pending_ops == 1
        c.mkdir("/elsewhere")  # advances the virtual clock past the bound
        c.stat_dir("/")  # stale check fires before the stat
        assert c.pending_ops == 0
        assert fs.total_files() == 1

    def test_namespace_identical_to_unbatched(self):
        def build(fs):
            c = fs.client()
            c.mkdir("/a")
            c.mkdir("/a/b")
            for n in range(10):
                c.create(f"/a/f{n}")
                c.create(f"/a/b/g{n}")
            if hasattr(c, "flush"):
                c.flush()
            return c

        plain = LocoFS(ClusterConfig(num_metadata_servers=4))
        batched = batched_fs(max_ops=4)
        cp, cb = build(plain), build(batched)
        for d in ("/a", "/a/b"):
            assert sorted(e.name for e in cp.readdir(d)) == \
                sorted(e.name for e in cb.readdir(d))
        assert plain.total_files() == batched.total_files()
        assert plain.total_directories() == batched.total_directories()

    def test_lease_renewal_is_not_a_cache_hit(self):
        fs = batched_fs(max_ops=2)
        c = fs.client()
        c.mkdir("/d")
        hits_before = c.dcache.hits
        c.create("/d/f0")
        c.create("/d/f1")  # budget reached: flush piggybacks a renewal
        # the creates' own parent resolutions may hit, but the renewal at
        # flush time must not add an extra hit beyond them
        assert c.dcache.hits - hits_before <= 2


class TestBatchCommandEngines:
    @pytest.mark.parametrize("engine_kind", ["direct", "event"])
    def test_batched_run_builds_namespace(self, engine_kind):
        fs = batched_fs(engine_kind=engine_kind, max_ops=8)
        if engine_kind == "direct":
            c = fs.client()
            c.mkdir("/d")
            for n in range(20):
                c.create(f"/d/f{n}")
            c.flush()
            assert fs.total_files() == 20
        else:
            done = []
            c = fs.client()

            def gen():
                yield from c.op_generator("mkdir", "/d")
                for n in range(20):
                    yield from c.op_generator("create", f"/d/f{n}")
                yield from c._g_flush()

            fs.engine.spawn(gen(), lambda v, e: done.append(e),
                            client=fs.engine.new_client())
            fs.engine.sim.run()
            assert done == [None]
            assert fs.total_files() == 20

    def test_batching_beats_baseline_throughput(self):
        kw = dict(op="touch", num_clients=16, items_per_client=12)
        base = run_throughput("locofs-c", 2, **kw)
        fast = run_throughput("locofs-b", 2, **kw)
        assert fast.iops > base.iops
        assert fast.total_ops == base.total_ops

    def test_registry_builds_batching_system(self):
        sys_ = make_system("locofs-b", num_servers=2)
        assert isinstance(sys_.client(), BatchingLocoClient)


class TestBatchedKVMetering:
    def _metered(self, cls, **kw):
        return cls(meter=Meter(KVCostPolicy(CostModel())), **kw)

    @pytest.mark.parametrize("cls", [HashStore, BTreeStore])
    def test_multi_put_of_one_costs_like_put(self, cls):
        a, b = self._metered(cls), self._metered(cls)
        a.put(b"k", b"v" * 50)
        b.multi_put([(b"k", b"v" * 50)])
        assert b.meter.total_us == pytest.approx(a.meter.total_us)

    @pytest.mark.parametrize("cls", [HashStore, BTreeStore])
    def test_multi_put_amortizes_base_cost(self, cls):
        cost = CostModel()
        pairs = [(f"k{i}".encode(), b"v" * 50) for i in range(8)]
        batch = self._metered(cls)
        batch.multi_put(pairs)
        single = self._metered(cls)
        for k, v in pairs:
            single.put(k, v)
        expected = single.meter.total_us - 7 * (cost.kv_put_us
                                                - cost.kv_batch_record_us)
        assert batch.meter.total_us == pytest.approx(expected)
        assert batch.meter.total_us < single.meter.total_us

    @pytest.mark.parametrize("cls", [HashStore, BTreeStore])
    def test_multi_get_amortizes_and_aligns(self, cls):
        store = self._metered(cls)
        store.multi_put([(f"k{i}".encode(), f"v{i}".encode()) for i in range(4)])
        t0 = store.meter.total_us
        out = store.multi_get([b"k1", b"missing", b"k3"])
        assert out == [b"v1", None, b"v3"]
        cost = CostModel()
        spent = store.meter.total_us - t0
        assert spent < 3 * cost.kv_get_us + 6 * cost.kv_per_byte_us

    def test_empty_batches_charge_nothing(self):
        store = self._metered(HashStore)
        store.multi_put([])
        assert store.multi_get([]) == []
        assert store.meter.total_us == 0.0


class TestWALGroupCommit:
    def test_group_is_one_replayable_unit(self, tmp_path):
        p = str(tmp_path / "g.wal")
        wal = WriteAheadLog(p)
        wal.begin_group()
        wal.append_put(b"a", b"1")
        wal.append_put(b"b", b"2")
        wal.end_group()
        wal.close()
        assert [(k, v) for _, k, v in WriteAheadLog.replay(p)] == \
            [(b"a", b"1"), (b"b", b"2")]

    def test_nested_groups_flush_once_at_outermost(self, tmp_path):
        p = str(tmp_path / "n.wal")
        wal = WriteAheadLog(p)
        wal.begin_group()
        wal.append_put(b"a", b"1")
        wal.begin_group()  # e.g. multi_put inside an engine batch scope
        wal.append_put(b"b", b"2")
        wal.end_group()
        assert os.path.getsize(p) == 0  # inner end does not write
        wal.append_put(b"c", b"3")
        wal.end_group()
        wal.flush()
        assert os.path.getsize(p) > 0
        wal.close()
        assert [k for _, k, _ in WriteAheadLog.replay(p)] == [b"a", b"b", b"c"]

    def test_append_many_matches_individual_appends(self, tmp_path):
        p1, p2 = str(tmp_path / "m1.wal"), str(tmp_path / "m2.wal")
        records = [(OP_PUT, f"k{i}".encode(), b"v") for i in range(5)]
        w1 = WriteAheadLog(p1)
        w1.append_many(records)
        w1.close()
        w2 = WriteAheadLog(p2)
        for _, k, v in records:
            w2.append_put(k, v)
        w2.close()
        with open(p1, "rb") as f1, open(p2, "rb") as f2:
            assert f1.read() == f2.read()

    def test_store_group_scope_survives_crash_replay(self, tmp_path):
        p = str(tmp_path / "s.wal")
        store = HashStore(wal_path=p)
        with store.group():
            store.multi_put([(b"x", b"1"), (b"y", b"2")])
            store.put(b"z", b"3")
        # crash: no close(); reopen from the log alone
        store._wal.flush()
        recovered = HashStore(wal_path=str(tmp_path / "s.wal"))
        assert recovered.get(b"x") == b"1"
        assert recovered.get(b"z") == b"3"


class TestCreateMany:
    """Bulk create_many: virtual time identical to one create() per name."""

    @staticmethod
    def _build(use_many, dirs=3, files=40, max_ops=8, **cfg_kw):
        fs = batched_fs(max_ops=max_ops, **cfg_kw)
        c = fs.client()
        names = [f"f{n:03d}" for n in range(files)]
        for d in range(dirs):
            parent = f"/d{d}"
            c.mkdir(parent)
            if use_many:
                c.create_many(parent, names)
            else:
                for name in names:
                    c.create(f"{parent}/{name}")
        c.flush()
        return fs, c

    def test_virtual_time_and_state_identical_to_per_name_create(self):
        # 40 names at an 8-op budget: each directory spans several flush
        # epochs, so the epoch-state revalidation path is exercised
        fast, _ = self._build(True)
        slow, _ = self._build(False)
        assert fast.engine.now == slow.engine.now
        assert fast.total_files() == slow.total_files() == 120
        for name in fast.fms_names:
            a, b = fast.cluster[name], slow.cluster[name]
            assert a.meter.total_us == b.meter.total_us
            assert a.requests_served == b.requests_served

    def test_flushed_duplicate_raises_exists_at_flush(self):
        # same write-behind semantics as create(): a name already durable
        # on the server enqueues fine and Exists surfaces at the flush
        fs, c = self._build(True, dirs=1, files=5)
        c.create_many("/d0", ["f003"])
        with pytest.raises(Exists):
            c.flush()

    def test_pending_duplicate_detected_before_flush(self):
        fs = batched_fs(max_ops=64)
        c = fs.client()
        c.mkdir("/d")
        c.create_many("/d", ["a", "b"])
        assert c.pending_ops == 2
        with pytest.raises(Exists):
            c.create_many("/d", ["b"])

    def test_missing_parent_raises(self):
        from repro.common.errors import NoEntry

        fs = batched_fs(max_ops=8)
        c = fs.client()
        with pytest.raises(NoEntry):
            c.create_many("/nope", ["f0"])

    def test_cache_disabled_fallback_matches_per_name_create(self):
        from repro.common.config import CacheConfig

        def build(use_many):
            cfg = ClusterConfig(
                num_metadata_servers=4,
                cache=CacheConfig(enabled=False),
                batch=BatchConfig(enabled=True, max_ops=8),
            )
            fs = LocoFS(cfg, engine_kind="direct")
            c = fs.client()
            names = [f"f{n:03d}" for n in range(10)]
            for d in range(2):
                c.mkdir(f"/d{d}")
                if use_many:
                    c.create_many(f"/d{d}", names)
                else:
                    for name in names:
                        c.create(f"/d{d}/{name}")
            c.flush()
            return fs

        fast, slow = build(True), build(False)
        assert fast.engine.now == slow.engine.now
        assert fast.total_files() == slow.total_files() == 20
