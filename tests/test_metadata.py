"""Tests for metadata structures: layouts, dirents, ACLs, ring, leases."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import Credentials, DirEntry, FileType
from repro.metadata import acl, dirent
from repro.metadata.chash import ConsistentHashRing, file_placement_key
from repro.metadata.layout import (
    DIR_INODE,
    FILE_ACCESS,
    FILE_CONTENT,
    FILE_COUPLED,
    FixedLayout,
)
from repro.metadata.lease import LeaseCache


class TestFixedLayout:
    def test_paper_field_sets_match_table1(self):
        assert DIR_INODE.field_names == ["ctime", "mode", "uid", "gid", "uuid"]
        assert FILE_ACCESS.field_names == ["ctime", "mode", "uid", "gid"]
        assert FILE_CONTENT.field_names == ["mtime", "atime", "size", "bsize", "suuid", "sid"]

    def test_dir_inode_is_256_bytes(self):
        # paper §3.2.2 allocates 256 bytes per d-inode
        assert DIR_INODE.total_size == 256
        assert len(DIR_INODE.pack()) == 256

    def test_access_part_much_smaller_than_coupled(self):
        # the whole point of decoupling: the per-op value is small
        assert FILE_ACCESS.total_size < FILE_COUPLED.total_size / 4

    def test_pack_unpack_roundtrip(self):
        buf = FILE_CONTENT.pack(mtime=1.5, atime=2.5, size=4096, bsize=4096, suuid=77, sid=3)
        got = FILE_CONTENT.unpack(buf)
        assert got == {
            "mtime": 1.5,
            "atime": 2.5,
            "size": 4096,
            "bsize": 4096,
            "suuid": 77,
            "sid": 3,
        }

    def test_field_read_write_in_place(self):
        buf = FILE_ACCESS.pack(ctime=1.0, mode=0o644, uid=10, gid=20)
        buf2 = FILE_ACCESS.write(buf, "mode", 0o600)
        assert FILE_ACCESS.read(buf2, "mode") == 0o600
        assert FILE_ACCESS.read(buf2, "uid") == 10  # neighbours untouched
        assert len(buf2) == len(buf)

    def test_offsets_are_disjoint_and_ordered(self):
        offs = [(FILE_CONTENT.offset(f), FILE_CONTENT.size(f)) for f in FILE_CONTENT.field_names]
        end = 0
        for off, size in offs:
            assert off == end
            end = off + size
        assert end == FILE_CONTENT.packed_size

    def test_encode_decode_field(self):
        raw = FILE_CONTENT.encode_field("size", 123456)
        assert FILE_CONTENT.decode_field("size", raw) == 123456
        assert len(raw) == FILE_CONTENT.size("size")

    def test_wrong_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            FILE_ACCESS.read(b"\x00" * 3, "mode")

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            FILE_ACCESS.read(FILE_ACCESS.pack(), "nope")
        with pytest.raises(ValueError):
            FixedLayout("bad", [("a", "Q")], total_size=2)

    @given(
        st.floats(0, 2**31, allow_nan=False),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    def test_access_roundtrip_property(self, ctime, mode, uid, gid):
        buf = FILE_ACCESS.pack(ctime=ctime, mode=mode, uid=uid, gid=gid)
        assert FILE_ACCESS.read(buf, "mode") == mode
        assert FILE_ACCESS.read(buf, "uid") == uid
        assert FILE_ACCESS.read(buf, "gid") == gid
        assert FILE_ACCESS.read(buf, "ctime") == ctime


class TestDirent:
    def test_pack_iter_roundtrip(self):
        buf = dirent.pack_entry("file.txt", 42, FileType.FILE)
        buf += dirent.pack_entry("subdir", 43, FileType.DIRECTORY)
        got = list(dirent.iter_entries(buf))
        assert got == [
            DirEntry("file.txt", 42, FileType.FILE),
            DirEntry("subdir", 43, FileType.DIRECTORY),
        ]

    def test_find_entry(self):
        buf = b"".join(
            dirent.pack_entry(f"f{i}", i, FileType.FILE) for i in range(10)
        )
        assert dirent.find_entry(buf, "f7") == DirEntry("f7", 7, FileType.FILE)
        assert dirent.find_entry(buf, "missing") is None

    def test_remove_entry(self):
        buf = b"".join(dirent.pack_entry(f"f{i}", i, FileType.FILE) for i in range(3))
        buf2, removed = dirent.remove_entry(buf, "f1")
        assert removed
        assert dirent.names(buf2) == ["f0", "f2"]
        buf3, removed = dirent.remove_entry(buf2, "f1")
        assert not removed
        assert buf3 == buf2

    def test_count_and_empty(self):
        assert dirent.count_entries(b"") == 0
        buf = dirent.pack_entry("x", 1, FileType.FILE)
        assert dirent.count_entries(buf) == 1

    def test_unicode_names(self):
        buf = dirent.pack_entry("файл-数据", 9, FileType.FILE)
        assert dirent.names(buf) == ["файл-数据"]

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            dirent.pack_entry("", 1, FileType.FILE)

    @given(st.lists(st.text(alphabet="abcXYZ09_-.", min_size=1, max_size=20), unique=True, max_size=30))
    def test_roundtrip_property(self, names_list):
        buf = b"".join(dirent.pack_entry(n, i, FileType.FILE) for i, n in enumerate(names_list))
        assert dirent.names(buf) == names_list


class TestAcl:
    def test_root_always_allowed(self):
        assert acl.may_access(0o000, 1, 1, Credentials(0, 0), acl.R_OK | acl.W_OK)

    def test_owner_bits(self):
        cred = Credentials(10, 20)
        assert acl.may_access(0o700, 10, 99, cred, acl.R_OK | acl.W_OK | acl.X_OK)
        assert not acl.may_access(0o070, 10, 99, cred, acl.R_OK)  # owner class wins

    def test_group_bits(self):
        cred = Credentials(10, 20)
        assert acl.may_access(0o070, 99, 20, cred, acl.R_OK | acl.W_OK | acl.X_OK)
        assert not acl.may_access(0o007, 99, 20, cred, acl.R_OK)

    def test_other_bits(self):
        cred = Credentials(10, 20)
        assert acl.may_access(0o005, 99, 99, cred, acl.R_OK | acl.X_OK)
        assert not acl.may_access(0o005, 99, 99, cred, acl.W_OK)

    def test_ancestor_exec_chain(self):
        cred = Credentials(10, 20)
        ok = [(0o755, 0, 0), (0o711, 99, 99)]
        assert acl.check_ancestor_exec(ok, cred)
        blocked = ok + [(0o700, 99, 99)]
        assert not acl.check_ancestor_exec(blocked, cred)


class TestConsistentHash:
    def test_lookup_deterministic(self):
        r1, r2 = ConsistentHashRing(), ConsistentHashRing()
        for n in ["a", "b", "c"]:
            r1.add_node(n)
            r2.add_node(n)
        keys = [f"key{i}".encode() for i in range(100)]
        assert [r1.lookup(k) for k in keys] == [r2.lookup(k) for k in keys]

    def test_balance_reasonable(self):
        ring = ConsistentHashRing(vnodes=128)
        for i in range(8):
            ring.add_node(f"fms{i}")
        from collections import Counter

        counts = Counter(ring.lookup(f"k{i}".encode()) for i in range(8000))
        assert len(counts) == 8
        assert min(counts.values()) > 8000 / 8 * 0.5
        assert max(counts.values()) < 8000 / 8 * 1.8

    def test_remove_node_only_moves_its_keys(self):
        ring = ConsistentHashRing()
        for n in ["a", "b", "c", "d"]:
            ring.add_node(n)
        keys = [f"key{i}".encode() for i in range(500)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove_node("c")
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != "c":
                assert after[k] == before[k]
            else:
                assert after[k] != "c"

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRing().lookup(b"k")

    def test_duplicate_and_missing_nodes(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(ValueError):
            ring.remove_node("zz")

    def test_placement_key_distinct_per_parent(self):
        # same file name in different directories must hash independently
        assert file_placement_key(1, "data") != file_placement_key(2, "data")
        assert file_placement_key(1, "a") != file_placement_key(1, "b")


class TestRingMemoLRU:
    """The process-wide ring memo is a bounded LRU: membership churn
    (replication and elasticity runs flip through many node sets) must not
    grow it without bound, and re-touching a hot membership must refresh
    its recency so churn evicts cold entries first."""

    def test_memo_bounded_under_membership_churn(self):
        from repro.metadata import chash

        hot = ConsistentHashRing(vnodes=8)
        hot.add_node("hot0")
        hot.add_node("hot1")
        want = {k: hot.lookup(k) for k in (f"k{i}".encode() for i in range(20))}
        for i in range(chash._RING_MEMO_MAX + 50):
            churn = ConsistentHashRing(vnodes=8)
            churn.add_node(f"churn{i}")
        assert len(chash._RING_MEMO) <= chash._RING_MEMO_MAX
        # lookups stay correct whether or not the memo kept the membership
        again = ConsistentHashRing(vnodes=8)
        again.add_node("hot0")
        again.add_node("hot1")
        assert {k: again.lookup(k) for k in want} == want
        assert len(chash._RING_MEMO) <= chash._RING_MEMO_MAX

    def test_memo_hit_refreshes_recency(self):
        from repro.metadata import chash

        chash._RING_MEMO.clear()
        cap = chash._RING_MEMO_MAX
        for i in range(cap):
            r = ConsistentHashRing(vnodes=4)
            r.add_node(f"m{i}")
        assert len(chash._RING_MEMO) == cap
        # a memo hit (identical membership) must move m0 to the tail ...
        touched = ConsistentHashRing(vnodes=4)
        touched.add_node("m0")
        assert len(chash._RING_MEMO) == cap  # hit, not an insert
        # ... so the next eviction claims the coldest entry, m1, not m0
        fresh = ConsistentHashRing(vnodes=4)
        fresh.add_node("fresh")
        def key(n):
            return (frozenset({n}), 4)

        assert key("m0") in chash._RING_MEMO
        assert key("m1") not in chash._RING_MEMO
        assert len(chash._RING_MEMO) <= cap

    def test_identical_memberships_share_ring_storage(self):
        a = ConsistentHashRing(vnodes=16)
        b = ConsistentHashRing(vnodes=16)
        for n in ("x", "y", "z"):
            a.add_node(n)
            b.add_node(n)
        assert a._ring is b._ring  # memoized tuple, not a rebuilt copy
        assert a._points is b._points


class TestLeaseCache:
    def test_hit_within_lease(self):
        c = LeaseCache(lease_seconds=30)
        c.put("k", "v", now_us=0)
        assert c.get("k", now_us=29_999_999) == "v"
        assert c.hits == 1

    def test_expires_exactly_at_lease(self):
        c = LeaseCache(lease_seconds=30)
        c.put("k", "v", now_us=0)
        assert c.get("k", now_us=30_000_000) is None
        assert c.expirations == 1

    def test_miss_unknown(self):
        c = LeaseCache()
        assert c.get("nope", 0) is None
        assert c.misses == 1

    def test_lru_eviction(self):
        c = LeaseCache(capacity=2)
        c.put("a", 1, 0)
        c.put("b", 2, 0)
        c.get("a", 1)  # touch a
        c.put("c", 3, 0)  # evicts b
        assert c.get("b", 1) is None
        assert c.get("a", 1) == 1
        assert c.get("c", 1) == 3

    def test_invalidate_prefix(self):
        c = LeaseCache()
        for p in ["/a", "/a/b", "/a/bb", "/ax", "/z"]:
            c.put(p, p, 0)
        assert c.invalidate_prefix("/a/") == 2
        assert c.get("/a", 1) == "/a"
        assert c.get("/a/b", 1) is None
        assert c.get("/ax", 1) == "/ax"

    def test_put_refreshes_lease(self):
        c = LeaseCache(lease_seconds=1)
        c.put("k", "v1", now_us=0)
        c.put("k", "v2", now_us=900_000)
        assert c.get("k", now_us=1_500_000) == "v2"

    def test_hit_rate(self):
        c = LeaseCache()
        c.put("k", 1, 0)
        c.get("k", 1)
        c.get("x", 1)
        assert c.hit_rate == 0.5

    def test_full_cache_evicts_expired_before_live_lru(self):
        c = LeaseCache(lease_seconds=1, capacity=3)
        c.put("dead", 1, now_us=0)
        c.put("live-old", 2, now_us=2_000_000)
        c.put("live-new", 3, now_us=2_000_001)
        # "dead" has expired by now: it must be the eviction victim even
        # though "live-old" is the LRU entry
        c.put("fresh", 4, now_us=2_000_002)
        assert len(c) == 3
        assert c.expirations == 1
        assert c.get("live-old", 2_000_003) == 2
        assert c.get("fresh", 2_000_003) == 4
        assert c.get("dead", 2_000_003) is None

    def test_renewed_entry_not_evicted_as_expired(self):
        c = LeaseCache(lease_seconds=1, capacity=2)
        c.put("a", 1, now_us=0)
        assert c.renew("a", 900_000)
        c.put("b", 2, now_us=1_500_000)
        # "a" was renewed at 0.9 s: still live at 1.5 s despite the stale
        # heap tuple from its original insertion
        c.put("c", 3, now_us=1_600_000)  # over capacity: LRU evicts "a"...
        assert c.expirations == 0
        assert c.get("b", 1_600_001) == 2
        assert c.get("c", 1_600_001) == 3

    def test_invalidate_prefix_is_sublinear_at_64k_entries(self):
        c = LeaseCache(capacity=1 << 17)
        n = 1 << 16
        for i in range(n):
            c.put(f"/dirs/d{i:05d}/sub", i, 0)
        c.invalidate_prefix("/warmup-none/")  # absorbs the one-time sort
        c.prefix_scan_steps = 0
        removed = c.invalidate_prefix("/dirs/d00512/")
        assert removed == 1
        # O(log n + hits), not O(n): a full scan would be 65536 steps
        assert c.prefix_scan_steps <= 8
        assert len(c) == n - 1

    def test_prefix_index_survives_rename_bursts(self):
        c = LeaseCache()
        for p in ["/a/x", "/a/y", "/b/x", "/c/x"]:
            c.put(p, p, 0)
        # d-rename sequence: invalidate + invalidate_prefix, repeatedly
        c.invalidate("/a/x")
        assert c.invalidate_prefix("/a/") == 1
        c.put("/a2/x", 1, 0)  # new key after the index was built
        assert c.invalidate_prefix("/a2/") == 1
        assert c.invalidate_prefix("/b/") == 1
        assert c.get("/c/x", 1) == "/c/x"
