"""SLO engine: spec round-trips, budget math, burn rates, fig16 gate."""

import json

import pytest

from repro.obs.slo import (
    Objective,
    SLOSpec,
    burn_timeline,
    default_spec,
    evaluate_slo,
    format_slo,
    openloop_spec,
)
from repro.obs.telemetry import TelemetrySink


def _sink_with(good=0, bad=0, op="client.create", latency_us=100.0,
               window_us=100.0):
    sink = TelemetrySink(window_us=window_us)
    t = 0.0
    for _ in range(good):
        sink.op_complete(op, t, t + latency_us)
        t += 10.0
    for _ in range(bad):
        sink.op_complete(op, t, t + latency_us, error="FSError")
        t += 10.0
    return sink


# ---------------------------------------------------------------------------
# spec validation and round-trip
# ---------------------------------------------------------------------------

def test_objective_validation():
    with pytest.raises(ValueError):
        Objective("client.create", "nonsense", 0.99)
    with pytest.raises(ValueError):
        Objective("client.create", "availability", 1.5)
    with pytest.raises(ValueError):
        Objective("client.create", "latency", 0.95)  # missing threshold
    o = Objective("client.create", "latency", 0.95, threshold_us=1000.0,
                  quantile=0.999)
    assert o.name == "client.create:latency_p99.9"
    assert Objective("x", "availability", 0.99).name == "x:availability"


def test_spec_json_roundtrip(tmp_path):
    spec = default_spec()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    back = SLOSpec.from_file(path)
    assert back.name == spec.name
    assert [o.to_dict() for o in back.objectives] == \
        [o.to_dict() for o in spec.objectives]


# ---------------------------------------------------------------------------
# budget math
# ---------------------------------------------------------------------------

def test_availability_budget_consumption():
    # 1% budget over 200 ops = 2 allowed errors; 1 error = half consumed
    sink = _sink_with(good=199, bad=1)
    spec = SLOSpec("t", [Objective("client.create", "availability", 0.99)])
    report = evaluate_slo(spec, sink)
    [entry] = report["objectives"]
    assert entry["total"] == 200.0
    assert entry["bad"] == 1.0
    assert entry["budget"] == pytest.approx(2.0)
    assert entry["budget_consumed"] == pytest.approx(0.5)
    assert entry["ok"] and report["ok"]
    assert entry["good_fraction"] == pytest.approx(0.995)


def test_availability_budget_exhausted_fails():
    sink = _sink_with(good=150, bad=50)  # 25% errors vs 1% budget
    spec = SLOSpec("t", [Objective("client.create", "availability", 0.99)])
    report = evaluate_slo(spec, sink)
    [entry] = report["objectives"]
    assert entry["budget_consumed"] > 1.0
    assert not entry["ok"] and not report["ok"]
    assert entry["burn"]["overall"] == pytest.approx(25.0)  # 25% / 1%


def test_latency_objective_counts_slow_ops():
    sink = TelemetrySink(window_us=1000.0)
    for i in range(95):
        sink.op_complete("client.create", 0.0, 10.0)       # fast
    for i in range(5):
        sink.op_complete("client.create", 0.0, 90_000.0)   # slow
    spec = SLOSpec("t", [Objective("client.create", "latency", 0.90,
                                   threshold_us=20_000.0)])
    report = evaluate_slo(spec, sink)
    [entry] = report["objectives"]
    assert entry["bad"] == pytest.approx(5.0, abs=1.0)
    assert entry["budget"] == pytest.approx(10.0)
    assert entry["ok"]  # 5% slow < 10% allowance
    assert entry["observed_us"] > 20_000.0  # p99 well past the threshold


def test_no_traffic_passes_vacuously_but_flagged():
    sink = TelemetrySink()
    report = evaluate_slo(default_spec(), sink, horizon_us=1000.0)
    assert report["ok"]
    assert all(e["no_data"] for e in report["objectives"])


def test_burn_timeline_localizes_the_outage():
    sink = TelemetrySink(window_us=100.0, max_windows=64)
    for i in range(40):  # healthy windows 0-3
        sink.op_complete("client.create", 0.0, float(i * 10 + 5))
    for i in range(10):  # all errors in window 4
        sink.op_complete("client.create", 0.0, 400.0 + i, error="FSError")
    obj = Objective("client.create", "availability", 0.99)
    burns = burn_timeline(obj, sink)
    assert burns[0] == 0.0
    assert burns[4] == pytest.approx(100.0)  # 100% bad / 1% allowance
    assert max(burns) == burns[4]


def test_multiwindow_burn_rates_fast_vs_slow():
    # clean early run, errors only at the very end: the fast (recent)
    # burn must exceed the slow (long-horizon) burn
    sink = TelemetrySink(window_us=100.0, max_windows=128)
    for i in range(90):
        sink.op_complete("client.create", 0.0, float(i * 100 + 50))
    for i in range(10):
        sink.op_complete("client.create", 0.0, 9_000.0 + i * 100,
                         error="FSError")
    spec = SLOSpec("t", [Objective("client.create", "availability", 0.99)])
    report = evaluate_slo(spec, sink)
    [entry] = report["objectives"]
    assert entry["burn"]["fast"] >= entry["burn"]["slow"] > 0.0


def test_format_slo_renders_table():
    sink = _sink_with(good=10, latency_us=100.0)
    text = format_slo(evaluate_slo(default_spec(), sink))
    assert "client.create:availability" in text
    assert "PASS" in text and "verdict" in text


# ---------------------------------------------------------------------------
# the fig16 acceptance gate
# ---------------------------------------------------------------------------

def _crash_slo(system):
    from repro.harness.availability import run_availability

    sink = TelemetrySink()
    run_availability(system, 4, crash_server="dms", num_clients=4,
                     items_per_client=20, telemetry=sink)
    return evaluate_slo(default_spec(), sink)


def test_fig16_locofs_c_passes_default_slo():
    report = _crash_slo("locofs-c")
    assert report["ok"], format_slo(report)


def test_fig16_locofs_nc_burns_availability_budget():
    report = _crash_slo("locofs-nc")
    assert not report["ok"], format_slo(report)
    avail = next(e for e in report["objectives"]
                 if e["objective"].endswith("availability"))
    assert avail["budget_consumed"] > 1.0
    assert avail["good_fraction"] < 0.95


# ---------------------------------------------------------------------------
# the fig19 acceptance gate: replicated directory tier under leader kill
# ---------------------------------------------------------------------------

def _leader_kill_slo(system, victim):
    from repro.harness.availability import run_availability
    from repro.obs.slo import replicated_spec

    sink = TelemetrySink()
    run_availability(system, 2, crash_server=victim, num_clients=4,
                     items_per_client=20, telemetry=sink)
    return evaluate_slo(replicated_spec(), sink)


def test_fig19_locofs_r_passes_replicated_slo():
    # the failover happens inside the op: no create surfaces an error and
    # the p99 stays under the one-election-plus-retries threshold
    report = _leader_kill_slo("locofs-r", "rdms0.0")
    assert report["ok"], format_slo(report)


def test_fig19_locofs_nc_fails_replicated_slo():
    report = _leader_kill_slo("locofs-nc", "dms")
    assert not report["ok"], format_slo(report)


# ---------------------------------------------------------------------------
# throughput-floor objectives (open-loop runs, ISSUE 9)
# ---------------------------------------------------------------------------

def _openloop_sink(offered, shed=0, abandoned=0, errors=0):
    """Marks + error ops shaped like an OpenLoopSource-driven run."""
    sink = TelemetrySink(window_us=100.0)
    t = 0.0
    for _ in range(offered):
        sink.mark("client.offered", t)
        t += 5.0
    for _ in range(shed):
        sink.mark("client.shed", t)
        t += 5.0
    for _ in range(abandoned):
        sink.mark("client.abandoned", t)
        t += 5.0
    for _ in range(errors):
        sink.op_complete("client.create", t, t + 50.0, error="FSError")
        t += 5.0
    return sink


def test_throughput_floor_budget_math():
    # 10% budget over 200 offered = 20 allowed losses; 10 lost = half spent
    sink = _openloop_sink(offered=200, shed=6, abandoned=3, errors=1)
    spec = SLOSpec("t", [Objective("client.offered", "throughput-floor", 0.90)])
    report = evaluate_slo(spec, sink)
    [entry] = report["objectives"]
    assert entry["total"] == 200.0
    assert entry["bad"] == 10.0
    assert entry["budget"] == pytest.approx(20.0)
    assert entry["budget_consumed"] == pytest.approx(0.5)
    assert entry["good_fraction"] == pytest.approx(0.95)
    assert entry["ok"] and report["ok"]


def test_throughput_floor_fails_when_floor_broken():
    sink = _openloop_sink(offered=200, shed=35, abandoned=5)  # 20% lost
    report = evaluate_slo(openloop_spec(), sink)
    [entry] = report["objectives"]
    assert entry["budget_consumed"] == pytest.approx(2.0)
    assert not entry["ok"] and not report["ok"]
    assert "throughput_floor" in format_slo(report)


def test_throughput_floor_objective_roundtrip():
    obj = Objective("client.offered", "throughput-floor", 0.90)
    assert obj.name == "client.offered:throughput_floor"
    back = Objective.from_dict(obj.to_dict())
    assert back.kind == "throughput-floor" and back.target == 0.90
    spec = openloop_spec()
    assert spec.name == "openloop"
    assert [o.kind for o in spec.objectives] == ["throughput-floor"]
