"""Smoke tests for the experiment modules (tiny scales; shape only).

The full-size shape assertions live in benchmarks/; here we verify each
experiment runs end-to-end, produces well-formed results, and preserves
its most load-bearing property at miniature scale.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    fig01_gap,
    fig06_latency,
    fig07_latency_ops,
    fig08_throughput,
    fig09_bridging_gap,
    fig10_flattened,
    fig11_decoupled,
    fig12_fullsystem,
    fig13_depth,
    fig14_rename,
    fig15_batching,
    table1_access_matrix,
)
from repro.experiments.common import ExperimentResult


def test_registry_covers_every_figure_and_table():
    assert set(REGISTRY) == {
        "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        "table1", "table3",
    }
    for mod in REGISTRY.values():
        assert hasattr(mod, "run")


def test_experiment_result_report_and_normalize():
    res = ExperimentResult(
        experiment="X", title="t", col_header="s", columns=[1, 2],
        rows={"a": {1: 2.0, 2: 4.0}, "b": {1: 1.0, 2: 1.0}},
    )
    assert "X: t" in res.report()
    norm = res.normalized("b")
    assert norm.rows["a"][1] == pytest.approx(2.0)
    assert res.series("a")[2] == 4.0


def test_fig01_smoke():
    res = fig01_gap.run(systems=("lustre-d1",), server_counts=(1, 2),
                        items_per_client=8, client_scale=0.1)
    assert res.rows["Lustre D1"][2] > 0
    assert res.extras["kv_iops"] > res.rows["Lustre D1"][1]


def test_fig06_smoke():
    res = fig06_latency.run(systems=("locofs-c", "cephfs"), server_counts=(1,),
                            n_items=8)
    assert res["touch"].rows["LocoFS-C"][1] < res["touch"].rows["CephFS"][1]


def test_fig07_smoke():
    res = fig07_latency_ops.run(systems=("locofs-c", "gluster"), num_servers=2,
                                n_items=8)
    assert res.rows["LocoFS-C"]["rm"] == pytest.approx(1.0)
    assert res.rows["Gluster"]["rm"] > 1.0


def test_fig08_smoke():
    res = fig08_throughput.run(ops=("touch",), server_counts=(1,),
                               systems=("locofs-c", "cephfs"),
                               items_per_client=8, client_scale=0.1)
    rows = res["touch"].rows
    assert rows["LocoFS-C"][1] > rows["CephFS"][1]


def test_fig09_smoke():
    res = fig09_bridging_gap.run(systems=("locofs-c",), server_counts=(1,),
                                 items_per_client=10, client_scale=0.2)
    assert 0 < res.rows["LocoFS-C"][1] <= 120


def test_fig10_smoke():
    res = fig10_flattened.run(systems=("locofs-c", "indexfs"), n_items=10)
    assert res.rows["LocoFS-C"]["touch"] < res.rows["IndexFS"]["touch"]


def test_fig11_smoke():
    res = fig11_decoupled.run(systems=("locofs-df", "locofs-cf"), num_servers=2,
                              items_per_client=8, client_scale=0.2)
    for op in ("chmod", "truncate"):
        assert res.rows["LocoFS-DF"][op] > 0
        assert res.rows["LocoFS-CF"][op] > 0


def test_fig12_smoke():
    res = fig12_fullsystem.run(systems=("locofs-c",), sizes=(512, 65536),
                               num_servers=2, n_files=4)
    w = res["write"].rows["LocoFS-C"]
    assert w[65536] > w[512]  # bigger I/O costs more wire time


def test_fig13_smoke():
    res = fig13_depth.run(configs=(("locofs-nc", 2),), depths=(1, 16),
                          items_per_client=10, client_scale=0.2)
    row = res.rows["LocoFS-NC (2 srv)"]
    assert row[16] < row[1]  # depth hurts the no-cache config


def test_fig14_smoke():
    res = fig14_rename.run(group_sizes=(100, 300), base_dirs=1500)
    assert res.rows["btree-ssd"][300] > res.rows["btree-ssd"][100]
    # virtual-time rows are the primary series; wall clock is opt-in only
    assert "wall_seconds" not in res.extras


def test_fig14_deterministic_and_wall_optin():
    a = fig14_rename.run(group_sizes=(100,), base_dirs=800)
    b = fig14_rename.run(group_sizes=(100,), base_dirs=800)
    assert a.rows == b.rows  # modeled seconds are bit-identical run to run
    c = fig14_rename.run(group_sizes=(100,), base_dirs=800, measure_wall=True)
    assert c.extras["wall_seconds"]["hash-hdd"][100] >= 0


def test_fig15_smoke():
    res = fig15_batching.run(batch_sizes=(8,), client_counts=(32,),
                             num_servers=2, items_per_client=8,
                             client_scale=0.25)
    assert res.rows["LocoFS-B (b=8)"][32] > res.rows["LocoFS-C"][32]


def test_table1_full_match():
    res = table1_access_matrix.run()
    assert "12/12 rows match" in res.notes[0]


def test_fig18_smoke():
    from repro.experiments import fig18_openloop

    res = fig18_openloop.run(systems=("locofs-c", "locofs-nc"),
                             packs=("dl-pipeline",),
                             loads=(20_000.0, 80_000.0), num_servers=2,
                             horizon_us=20_000.0, seed=0)
    r = res["dl-pipeline"]
    assert set(r.rows) == {"LocoFS-C", "LocoFS-NC"}
    # goodput at the low load tracks offered for both systems
    assert r.rows["LocoFS-C"][20_000.0] > 15_000
    # the headline ordering: the no-cache baseline saturates first
    knees = r.extras["knees"]
    c = knees["locofs-c"] if knees["locofs-c"] is not None else float("inf")
    nc = knees["locofs-nc"] if knees["locofs-nc"] is not None else float("inf")
    assert nc < c
    assert r.extras["saturating_phase"]["locofs-nc"] is not None
