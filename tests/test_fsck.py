"""fsck invariants: clean namespaces pass; injected corruption is caught;
random op sequences preserve every invariant (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, ClusterConfig
from repro.common.errors import FSError
from repro.core.fs import LocoFS
from repro.core.fsck import check


def make_fs(n=3, **kw):
    return LocoFS(ClusterConfig(num_metadata_servers=n, **kw))


class TestCleanNamespaces:
    def test_empty_fs_is_clean(self):
        report = check(make_fs())
        assert report.clean
        assert report.directories == 1  # root

    def test_populated_fs_is_clean(self):
        fs = make_fs()
        c = fs.client()
        c.mkdir("/a")
        c.mkdir("/a/b")
        for i in range(25):
            c.create(f"/a/f{i}")
            c.write(f"/a/f{i}", 0, b"x" * 100)
        report = check(fs)
        assert report.clean, report.errors
        assert report.directories == 3
        assert report.files == 25
        assert report.blocks == 25

    def test_clean_after_unlinks_and_rmdir(self):
        fs = make_fs()
        c = fs.client()
        c.mkdir("/d")
        for i in range(10):
            c.create(f"/d/f{i}")
            c.write(f"/d/f{i}", 0, b"y" * 5000)
        for i in range(10):
            c.unlink(f"/d/f{i}")
        c.rmdir("/d")
        report = check(fs)
        assert report.clean, report.errors
        assert report.files == 0
        assert report.blocks == 0

    def test_clean_after_renames(self):
        fs = make_fs(4)
        c = fs.client()
        c.mkdir("/src")
        c.mkdir("/src/deep")
        for i in range(15):
            c.create(f"/src/f{i}")
        c.write("/src/f0", 0, b"data" * 100)
        c.rename("/src/f0", "/src/g0")
        c.rename("/src", "/dst")
        report = check(fs)
        assert report.clean, report.errors

    def test_clean_in_coupled_mode(self):
        fs = make_fs(2, decoupled_file_metadata=False)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.rename("/d/f", "/d/g")
        report = check(fs)
        assert report.clean, report.errors


class TestCorruptionDetection:
    def test_detects_dangling_subdir_dirent(self):
        fs = make_fs()
        c = fs.client()
        c.mkdir("/a")
        # rip out the inode but leave the dirent
        fs.dms.store.delete(b"I:/a")
        del fs.dms._meta["/a"]
        report = check(fs)
        assert any("I3" in e for e in report.errors)

    def test_detects_missing_parent_link(self):
        fs = make_fs()
        c = fs.client()
        c.mkdir("/a")
        from repro.common.uuidgen import ROOT_UUID

        fs.dms.store.put(b"E:" + ROOT_UUID.to_bytes(8, "big"), b"")
        report = check(fs)
        assert any("I2" in e for e in report.errors)

    def test_detects_unpaired_file_parts(self):
        fs = make_fs(1)
        c = fs.client()
        c.create("/f")
        fms = fs.fms[0]
        doomed = [k for k, _ in fms.store.items() if k.startswith(b"C:")]
        fms.store.delete(doomed[0])
        report = check(fs)
        assert any("I4" in e for e in report.errors)

    def test_detects_dangling_file_dirent(self):
        fs = make_fs(1)
        c = fs.client()
        c.create("/f")
        fms = fs.fms[0]
        for k, _ in list(fms.store.items()):
            if k.startswith((b"A:", b"C:")):
                fms.store.delete(k)
        report = check(fs)
        assert any("I6" in e for e in report.errors)

    def test_detects_stale_mirror(self):
        fs = make_fs()
        c = fs.client()
        c.mkdir("/a")
        mode, uid, gid, uuid = fs.dms._meta["/a"]
        fs.dms._meta["/a"] = (0o777 | 0o040000, uid, gid, uuid)
        report = check(fs)
        assert any("I8" in e for e in report.errors)

    def test_detects_leaked_blocks(self):
        fs = make_fs()
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"z" * 100)
        # remove the file metadata behind the object store's back
        for fms in fs.fms:
            for k, _ in list(fms.store.items()):
                fms.store.delete(k)
        report = check(fs)
        assert any("I9" in e for e in report.errors)

    def test_detects_misplaced_file(self):
        fs = make_fs(4)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        # copy the file's records onto the wrong FMS
        src = None
        for fms in fs.fms:
            recs = [(k, v) for k, v in fms.store.items() if not k.startswith(b"E:")]
            if recs:
                src = (fms, recs)
        fms_src, recs = src
        wrong = next(f for f in fs.fms if f is not fms_src)
        for k, v in recs:
            fms_src.store.delete(k)
            wrong.store.put(k, v)
        report = check(fs)
        assert any("I7" in e or "I5" in e for e in report.errors)


# -- property test: random op sequences keep every invariant -----------------------

paths = st.sampled_from(["/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"])
ops = st.lists(
    st.tuples(
        st.sampled_from(["mkdir", "create", "unlink", "rmdir", "rename", "write",
                         "chmod", "truncate"]),
        paths,
        paths,
    ),
    min_size=1,
    max_size=40,
)


@given(ops)
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_preserve_invariants(op_stream):
    fs = LocoFS(ClusterConfig(num_metadata_servers=3,
                              cache=CacheConfig(enabled=False)))
    c = fs.client()
    for op, p1, p2 in op_stream:
        try:
            if op == "mkdir":
                c.mkdir(p1)
            elif op == "create":
                c.create(p1 + "/file")
            elif op == "unlink":
                c.unlink(p1 + "/file")
            elif op == "rmdir":
                c.rmdir(p1)
            elif op == "rename" and p1 != p2:
                c.rename(p1, p2)
            elif op == "write":
                c.write(p1 + "/file", 0, b"w" * 256)
            elif op == "chmod":
                c.chmod(p1, 0o700)
            elif op == "truncate":
                c.truncate(p1 + "/file", 64)
        except FSError:
            pass  # rejected ops must not corrupt state
    report = check(fs)
    assert report.clean, (op_stream, report.errors)
