"""Property-based tests: each store must behave exactly like a dict model."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kv import BTreeStore, HashStore, LSMStore
from repro.kv.btree import prefix_upper_bound
from repro.kv.memtable import SkipListMemtable

keys = st.binary(min_size=1, max_size=24)
values = st.binary(max_size=64)

# op streams: (op, key, value)
ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete", "get"]), keys, values),
    max_size=200,
)


def apply_ops(store, model, op_stream):
    for op, k, v in op_stream:
        if op == "put":
            store.put(k, v)
            model[k] = v
        elif op == "delete":
            assert store.delete(k) == (k in model)
            model.pop(k, None)
        else:
            assert store.get(k) == model.get(k)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_btree_matches_dict_model(op_stream):
    store = BTreeStore()
    model: dict[bytes, bytes] = {}
    apply_ops(store, model, op_stream)
    assert dict(store.items()) == model
    assert len(store) == len(model)
    # ordered iteration invariant
    ks = [k for k, _ in store.items()]
    assert ks == sorted(ks)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_hash_matches_dict_model(op_stream):
    store = HashStore()
    model: dict[bytes, bytes] = {}
    apply_ops(store, model, op_stream)
    assert dict(store.items()) == model
    assert len(store) == len(model)


@given(ops)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lsm_matches_dict_model(op_stream):
    import shutil
    import tempfile

    directory = tempfile.mkdtemp(prefix="lsm-prop-")
    store = LSMStore(
        directory=directory,
        memtable_limit=512,  # force frequent flushes so sstables participate
        max_tables=3,
    )
    try:
        model: dict[bytes, bytes] = {}
        apply_ops(store, model, op_stream)
        assert dict(store.items()) == model
        ks = [k for k, _ in store.items()]
        assert ks == sorted(ks)
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


@given(st.lists(st.tuples(keys, values), max_size=150))
@settings(max_examples=60, deadline=None)
def test_memtable_matches_sorted_dict(pairs):
    mt = SkipListMemtable(seed=3)
    model: dict[bytes, bytes] = {}
    for k, v in pairs:
        mt.put(k, v)
        model[k] = v
    assert list(mt.items()) == sorted(model.items())


@given(st.lists(st.tuples(keys, values), max_size=80), keys, keys)
@settings(max_examples=60, deadline=None)
def test_btree_scan_matches_model_range(pairs, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    store = BTreeStore()
    model: dict[bytes, bytes] = {}
    for k, v in pairs:
        store.put(k, v)
        model[k] = v
    got = list(store.scan(lo, hi))
    want = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert got == want


@given(st.binary(min_size=1, max_size=16), st.binary(max_size=16))
def test_prefix_upper_bound_property(prefix, suffix):
    ub = prefix_upper_bound(prefix)
    if ub is None:
        # all-0xff prefixes have no finite upper bound: any fixed cap would
        # wrongly exclude a longer all-0xff key
        assert prefix == b"\xff" * len(prefix)
    else:
        assert ub > prefix
        # every string with the prefix sorts below the bound
        assert prefix + suffix < ub


def test_prefix_upper_bound_all_ff_unbounded():
    # regression: the old fixed b"\xff" * 64 cap excluded longer keys
    assert prefix_upper_bound(b"\xff") is None
    assert prefix_upper_bound(b"\xff" * 80) is None
    long_key = b"\xff" * 70 + b"tail"
    store = BTreeStore()
    store.put(long_key, b"v")
    store.put(b"\x01", b"w")
    assert dict(store.prefix_scan(b"\xff" * 65)) == {long_key: b"v"}


@given(st.lists(st.tuples(keys, values), max_size=60), st.binary(min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_btree_prefix_scan_matches_filter(pairs, prefix):
    store = BTreeStore()
    model: dict[bytes, bytes] = {}
    for k, v in pairs:
        store.put(k, v)
        model[k] = v
    got = dict(store.prefix_scan(prefix))
    want = {k: v for k, v in model.items() if k.startswith(prefix)}
    assert got == want


@given(
    st.lists(st.tuples(keys, values), max_size=60),
    st.binary(min_size=1, max_size=4),
    st.binary(min_size=1, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_move_prefix_equivalence_btree_vs_hash(pairs, old, new):
    # moving a prefix must produce identical *contents* on both store kinds
    if old.startswith(new) or new.startswith(old):
        return  # overlapping prefixes make the rewrite ill-defined
    bt, hs = BTreeStore(), HashStore()
    for k, v in pairs:
        bt.put(k, v)
        hs.put(k, v)
    n1 = bt.move_prefix(old, new)
    n2 = hs.move_prefix(old, new)
    assert n1 == n2
    assert dict(bt.items()) == dict(hs.items())
