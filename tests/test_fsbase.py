"""Tests for the shared client facade (fsbase) surface."""

import pytest

from repro.common.config import ClusterConfig
from repro.core.fs import LocoFS
from repro.fsbase import FSClientBase


@pytest.fixture
def client():
    return LocoFS(ClusterConfig(num_metadata_servers=2)).client()


class TestOpGenerator:
    def test_every_declared_op_has_a_generator(self, client):
        client.mkdir("/d")
        client.create("/d/f")
        args = {
            "mkdir": ("/d2",),
            "rmdir": ("/d2",),
            "readdir": ("/d",),
            "create": ("/d/f2",),
            "unlink": ("/d/f2",),
            "stat": ("/d/f",),
            "stat_dir": ("/d",),
            "stat_file": ("/d/f",),
            "open": ("/d/f", 4),
            "chmod": ("/d/f", 0o600),
            "chown": ("/d/f", 1, 1),
            "access": ("/d/f", 4),
            "truncate": ("/d/f", 10),
            "rename": ("/d/f", "/d/g"),
            "write": ("/d/g", 0, b"x"),
            "read": ("/d/g", 0, 1),
        }
        assert set(args) == set(FSClientBase.GENERATOR_OPS)
        for op in FSClientBase.GENERATOR_OPS:
            gen = client.op_generator(op, *args[op])
            client._engine.run(gen)  # must execute without error

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ValueError):
            client.op_generator("fsync")

    def test_now_properties(self, client):
        client.mkdir("/t")
        assert client.now_us > 0
        assert client.now_s == pytest.approx(client.now_us / 1e6)


class TestPublicWrappers:
    def test_write_returns_length(self, client):
        client.create("/f")
        assert client.write("/f", 0, b"hello") == 5

    def test_open_returns_handle_dict(self, client):
        client.create("/f")
        h = client.open("/f")
        assert h["path"] == "/f"
        assert "uuid" in h and "size" in h

    def test_base_class_is_abstract(self):
        base = FSClientBase(engine=None)
        with pytest.raises(NotImplementedError):
            next(iter(base._g_mkdir("/x", 0o755)))
