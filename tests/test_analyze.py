"""Tests for the latency-attribution layer (repro.obs.analyze) and the
batch-aware span links feeding it."""

import json

import pytest

from repro.common.config import BatchConfig, ClusterConfig
from repro.core.fs import LocoFS
from repro.harness import run_latency, run_throughput
from repro.obs import MetricsRegistry, NullTracer, Tracer
from repro.obs.analyze import (
    LINK_BATCH_FLUSH,
    PHASES,
    analyze_ops,
    attribution_report,
    compare_attribution,
    format_attribution,
    heat_timelines,
    link_summary,
)
from repro.obs.export import chrome_trace_events, metrics_dump, write_chrome_trace


def batched_fs(max_ops=4, servers=2, engine_kind="direct", **kw):
    return LocoFS(
        ClusterConfig(num_metadata_servers=servers,
                      batch=BatchConfig(enabled=True, max_ops=max_ops, **kw)),
        engine_kind=engine_kind,
    )


def traced_batched_run(n_creates=8, max_ops=4):
    """A locofs-b direct run with tracer+metrics attached; returns both."""
    fs = batched_fs(max_ops=max_ops)
    tracer, registry = Tracer(), MetricsRegistry()
    fs.engine.attach_observability(tracer=tracer, metrics=registry)
    client = fs.client()
    client.mkdir("/d")
    for i in range(n_creates):
        client.create(f"/d/f{i}")
    client.flush()
    return tracer, registry


# ---------------------------------------------------------------------------
# span links
# ---------------------------------------------------------------------------

class TestSpanLinks:
    def test_every_deferred_create_links_to_exactly_one_flush(self):
        tracer, _ = traced_batched_run(n_creates=8, max_ops=4)
        creates = [s for s in tracer.spans if s.name == "client.create"]
        assert len(creates) == 8
        for op in creates:
            flushes = [d for d, k in op.links if k == LINK_BATCH_FLUSH]
            assert len(flushes) == 1
            assert flushes[0].name.startswith("rpc.batch[")
            assert flushes[0].end_us is not None

    def test_flush_span_carries_the_batch_size(self):
        tracer, _ = traced_batched_run(n_creates=4, max_ops=4)
        batches = [s for s in tracer.spans if s.name.startswith("rpc.batch[")]
        assert batches and batches[0].name == "rpc.batch[1]"
        summary = link_summary(tracer)
        assert summary["count"] == summary["resolved"] == 4
        assert summary["by_kind"] == {LINK_BATCH_FLUSH: 4}
        assert summary["deferred_ops"] == 4
        assert summary["multi_link_ops"] == 0

    def test_event_engine_links_too(self):
        tracer = Tracer()
        run_throughput("locofs-b", 2, op="touch", items_per_client=6,
                       client_scale=0.1, tracer=tracer)
        summary = link_summary(tracer)
        assert summary["deferred_ops"] > 0
        assert summary["resolved"] == summary["count"]
        assert summary["multi_link_ops"] == 0

    def test_no_links_without_batching(self):
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=4, tracer=tracer)
        assert link_summary(tracer)["count"] == 0

    def test_null_tracer_link_is_noop(self):
        nt = NullTracer()
        a = nt.begin("a", "op", 0.0, "c")
        b = nt.begin("b", "rpc", 0.0, "c")
        nt.link(a, b, LINK_BATCH_FLUSH)
        assert a.links == []


# ---------------------------------------------------------------------------
# per-record batch spans (satellite: no more holes in locofs-b traces)
# ---------------------------------------------------------------------------

class TestBatchRecordSpans:
    def test_batch_gets_record_children_under_its_rpc_span(self):
        tracer, _ = traced_batched_run(n_creates=4, max_ops=4)
        records = [s for s in tracer.spans if s.cat == "record"]
        assert records, "batch execution produced no record spans"
        for rec in records:
            assert rec.name == "batch.create_batch"
            assert rec.parent is not None and rec.parent.name.startswith("rpc.batch[")
            assert rec.end_us is not None and rec.duration_us > 0
        # the KV breakdown nests under the record, not the raw batch span
        kv_kids = [s for s in tracer.spans
                   if s.cat == "kv" and s.parent in records]
        assert kv_kids

    def test_record_spans_on_event_engine(self):
        tracer = Tracer()
        run_throughput("locofs-b", 2, op="touch", items_per_client=6,
                       client_scale=0.1, tracer=tracer)
        assert any(s.cat == "record" for s in tracer.spans)

    def test_records_land_in_server_pid_group(self, tmp_path):
        tracer, _ = traced_batched_run(n_creates=4, max_ops=4)
        events = chrome_trace_events(tracer)
        recs = [e for e in events if e.get("cat") == "record"]
        assert recs and all(e["pid"] == 2 for e in recs)


# ---------------------------------------------------------------------------
# attribution
# ---------------------------------------------------------------------------

class TestAttribution:
    def test_deferred_creates_report_nonzero_client_queue(self):
        tracer, _ = traced_batched_run(n_creates=8, max_ops=4)
        ops = analyze_ops(tracer)
        create = ops["client.create"]
        assert create["count"] == 8
        assert create["deferred"] == 8
        assert create["phases_us"]["client_queue"]["mean"] > 0
        # enqueue-to-durable latency dwarfs the op span itself
        assert create["latency_us"]["p50"] > 0

    def test_sync_ops_have_zero_client_queue(self):
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=6, tracer=tracer)
        ops = analyze_ops(tracer)
        for row in ops.values():
            assert row["deferred"] == 0
            assert row["phases_us"]["client_queue"]["mean"] == 0.0

    def test_phase_shares_sum_to_one(self):
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=6, tracer=tracer)
        for name, row in analyze_ops(tracer).items():
            total = sum(row["phase_share"][p] for p in PHASES)
            if sum(row["phases_us"][p]["mean"] for p in PHASES) > 0:
                assert total == pytest.approx(1.0), name

    def test_sync_phase_sum_matches_latency(self):
        """For synchronous ops the decomposition is exact, not amortized."""
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=5, tracer=tracer, ops=("mkdir",))
        row = analyze_ops(tracer)["client.mkdir"]
        phase_mean = sum(row["phases_us"][p]["mean"] for p in PHASES)
        assert phase_mean == pytest.approx(row["latency_us"]["mean"], rel=1e-9)

    def test_batching_shifts_share_from_network_to_client_queue(self):
        base = Tracer()
        run_throughput("locofs-c", 2, op="touch", items_per_client=8,
                       client_scale=0.1, tracer=base)
        batched = Tracer()
        run_throughput("locofs-b", 2, op="touch", items_per_client=8,
                       client_scale=0.1, tracer=batched)
        c0 = analyze_ops(base)["client.create"]
        c1 = analyze_ops(batched)["client.create"]
        assert c0["phase_share"]["client_queue"] == 0.0
        assert c1["phase_share"]["client_queue"] > 0.2
        assert c1["phase_share"]["network"] < c0["phase_share"]["network"]

    def test_empty_trace(self):
        report = attribution_report(Tracer())
        assert report["ops"] == {}
        assert report["links"]["count"] == 0
        assert report["heat"]["servers"] == {}
        assert "latency attribution" in format_attribution(report)

    def test_single_span_trace(self):
        tracer = Tracer()
        s = tracer.begin("client.solo", "op", 0.0, "client0")
        tracer.end(s, 10.0)
        ops = analyze_ops(tracer)
        assert ops["client.solo"]["latency_us"]["p99"] == 10.0
        assert ops["client.solo"]["phase_share"]["client"] == 1.0


# ---------------------------------------------------------------------------
# heat timelines
# ---------------------------------------------------------------------------

class TestHeatTimelines:
    def test_bounds_and_shape(self):
        tracer = Tracer()
        run_throughput("locofs-c", 2, op="touch", items_per_client=8,
                       client_scale=0.1, tracer=tracer)
        heat = heat_timelines(tracer)
        assert heat["window_us"] > 0
        assert set(heat["servers"]) == {"dms", "fms0", "fms1"}
        for series in heat["servers"].values():
            assert all(0.0 <= v <= 1.0 for v in series["busy"])
            assert all(v >= 0.0 for v in series["queue_depth"])
            assert len(series["busy"]) == len(series["queue_depth"])

    def test_busy_conservation(self):
        """Summed busy time in the windows equals summed serve-span time."""
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=5, tracer=tracer, ops=("mkdir",))
        heat = heat_timelines(tracer, window_us=50.0)
        serve_us = sum(s.duration_us for s in tracer.spans
                       if s.cat == "serve" and s.track == "dms")
        windowed = sum(heat["servers"]["dms"]["busy"]) * 50.0
        assert windowed == pytest.approx(serve_us, rel=1e-9)

    def test_explicit_window(self):
        tracer = Tracer()
        run_latency("locofs-c", 2, n_items=4, tracer=tracer, ops=("mkdir",))
        heat = heat_timelines(tracer, window_us=25.0)
        assert heat["window_us"] == 25.0

    def test_fixed_windows_export_as_counters(self, tmp_path):
        tracer, _ = traced_batched_run(n_creates=4)
        heat = heat_timelines(tracer)
        path = tmp_path / "t.json"
        write_chrome_trace(tracer, str(path), counters=heat)
        events = json.loads(path.read_text())["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters
        assert all(e["name"].endswith(".heat") for e in counters)


# ---------------------------------------------------------------------------
# exporters on a locofs-b run (satellite 3)
# ---------------------------------------------------------------------------

class TestExportersOnBatchedRun:
    def test_perfetto_json_validates(self, tmp_path):
        tracer, _ = traced_batched_run(n_creates=8, max_ops=4)
        path = tmp_path / "b.json"
        write_chrome_trace(tracer, str(path))
        events = json.loads(path.read_text())["traceEvents"]
        xs = [e for e in events if e.get("ph") == "X"]
        ids = {e["args"]["span_id"] for e in xs}
        # no dangling parent ids
        for e in xs:
            parent = e["args"].get("parent_id")
            assert parent is None or parent in ids
        # links resolve to exported spans, and flows pair up
        for e in xs:
            for link in e["args"].get("links", ()):
                assert link["to"] in ids
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts and starts == finishes

    def test_metrics_json_round_trips(self, tmp_path):
        _, registry = traced_batched_run(n_creates=8, max_ops=4)
        doc = json.loads(json.dumps(metrics_dump(registry, include_samples=True)))
        assert doc["counters"]["client.batch.flush"] >= 2
        assert any(k.endswith("wal.group_commit") for k in doc["counters"])
        assert any(k.endswith("batch.records") for k in doc["counters"])

    def test_trace_of_empty_tracer_exports(self, tmp_path):
        path = tmp_path / "empty.json"
        n = write_chrome_trace(Tracer(), str(path))
        assert n == 0
        assert json.loads(path.read_text())["traceEvents"] == []


# ---------------------------------------------------------------------------
# fsync / batch-record counters (satellite 2)
# ---------------------------------------------------------------------------

class TestBatchCounters:
    def test_wal_fsync_amortization_is_auditable(self, tmp_path):
        fs = LocoFS(
            ClusterConfig(num_metadata_servers=1,
                          batch=BatchConfig(enabled=True, max_ops=8)),
            data_dir=str(tmp_path),
        )
        registry = MetricsRegistry()
        fs.engine.attach_observability(metrics=registry)
        client = fs.client()
        client.mkdir("/d")
        for i in range(16):
            client.create(f"/d/f{i}")
        client.flush()
        counters = registry.snapshot()["counters"]
        assert counters["fms0.batch.records"] == 16
        # 16 records flushed in 2 batches -> 2 group commits, 2 durable
        # commit boundaries (one fsync each in sync mode): the amortization
        assert counters["fms0.wal.group_commit"] == 2
        assert counters["fms0.wal.fsync"] == 2
        assert counters["fms0.kv.wal_commit"] == 2

    def test_wal_counts_physical_commits(self, tmp_path):
        from repro.kv.wal import WriteAheadLog

        wal = WriteAheadLog(str(tmp_path / "x.wal"))
        wal.append_put(b"a", b"1")
        assert wal.commits == 1 and wal.syncs == 0
        wal.begin_group()
        wal.append_put(b"b", b"2")
        wal.append_put(b"c", b"3")
        wal.end_group()
        assert wal.commits == 2
        wal.begin_group()
        wal.end_group()  # empty group: no commit boundary
        assert wal.commits == 2
        wal.close()

    def test_sync_mode_counts_fsyncs(self, tmp_path):
        from repro.kv.wal import WriteAheadLog

        wal = WriteAheadLog(str(tmp_path / "s.wal"), sync=True)
        wal.append_put(b"a", b"1")
        wal.begin_group()
        wal.append_put(b"b", b"2")
        wal.end_group()
        assert wal.commits == 2 and wal.syncs == 2
        wal.close()

    def test_no_wal_no_fsync_counters(self):
        _, registry = traced_batched_run(n_creates=8, max_ops=4)
        counters = registry.snapshot()["counters"]
        group = [v for k, v in counters.items() if k.endswith("wal.group_commit")]
        assert group and sum(group) >= 1
        assert not any(k.endswith("wal.fsync") for k in counters)


# ---------------------------------------------------------------------------
# drift comparison (the CI gate)
# ---------------------------------------------------------------------------

class TestCompareAttribution:
    def _report(self, shares):
        return {"ops": {"client.create": {
            "phase_share": dict(zip(PHASES, shares)),
        }}}

    def test_identical_reports_have_no_findings(self):
        r = self._report([0.1, 0.3, 0.4, 0.1, 0.05, 0.05])
        assert compare_attribution(r, r, 0.05) == []

    def test_drift_beyond_threshold_is_flagged(self):
        base = self._report([0.1, 0.3, 0.4, 0.1, 0.05, 0.05])
        cur = self._report([0.1, 0.1, 0.6, 0.1, 0.05, 0.05])
        findings = compare_attribution(base, cur, 0.10)
        assert {f["phase"] for f in findings} == {"client_queue", "network"}
        assert all(f["kind"] == "share-drift" for f in findings)

    def test_added_and_removed_ops(self):
        base = {"ops": {"client.mkdir": {"phase_share": {}}}}
        cur = {"ops": {"client.create": {"phase_share": {}}}}
        kinds = {(f["op"], f["kind"]) for f in compare_attribution(base, cur)}
        assert kinds == {("client.mkdir", "removed"), ("client.create", "added")}

    def test_checked_in_baseline_matches_a_fresh_run(self):
        """The committed CI baseline must reproduce bit-for-bit."""
        from pathlib import Path

        baseline_path = Path(__file__).parent.parent / "results" / \
            "attribution_baseline.json"
        base = json.loads(baseline_path.read_text())
        for system in ("locofs-c", "locofs-b"):
            tracer = Tracer()
            run_throughput(system, 4, op="touch", items_per_client=10,
                           client_scale=0.15, tracer=tracer)
            report = attribution_report(
                tracer, meta=base["systems"][system]["meta"])
            assert compare_attribution(base["systems"][system], report,
                                       max_drift=0.10) == []


# ---------------------------------------------------------------------------
# determinism: analysis infrastructure must not perturb virtual time
# ---------------------------------------------------------------------------

class TestZeroCost:
    def test_batched_run_virtual_time_unchanged_by_observability(self):
        def run(observed):
            fs = batched_fs(max_ops=4)
            if observed:
                fs.engine.attach_observability(tracer=Tracer(),
                                               metrics=MetricsRegistry())
            client = fs.client()
            client.mkdir("/d")
            for i in range(10):
                client.create(f"/d/f{i}")
            client.flush()
            client.stat("/d/f3")
            return fs.engine.now

        assert run(False) == run(True)

    def test_event_engine_batched_zero_cost(self):
        def run(observed):
            tracer = Tracer() if observed else None
            r = run_throughput("locofs-b", 2, op="touch", items_per_client=6,
                               client_scale=0.1, tracer=tracer)
            return r.elapsed_us

        assert run(False) == run(True)
