"""Multi-DMS extension: shared semantics suite + the trade-off behaviour."""

import pytest

from repro.common.types import Credentials
from repro.core.multidms import MultiDMSLocoFS

from fs_semantics import FSSemantics


@pytest.fixture(params=[1, 2, 4])
def fs_deployment(request):
    return MultiDMSLocoFS(num_directory_servers=request.param, num_metadata_servers=3)


@pytest.fixture
def fs_client(fs_deployment):
    return fs_deployment.client()


@pytest.fixture
def fs_factory(fs_deployment):
    def make(cred):
        return fs_deployment.client(cred=cred)

    return make


class TestMultiDMSSemantics(FSSemantics):
    """The full FS contract must hold at 1, 2 and 4 directory shards."""


class TestSharding:
    def test_directories_spread_across_shards(self):
        fs = MultiDMSLocoFS(num_directory_servers=4, num_metadata_servers=2)
        c = fs.client()
        for i in range(40):
            c.mkdir(f"/d{i:02d}")
        counts = [s.num_directories() for s in fs.dms_servers]
        assert sum(counts) == 41  # root + 40
        assert sum(1 for n in counts if n > 0) >= 3

    def test_mkdir_throughput_scales_with_shards(self):
        from repro.sim.rpc import LocalCharge

        def run(n_shards):
            fs = MultiDMSLocoFS(num_directory_servers=n_shards,
                                num_metadata_servers=1, engine_kind="event")
            engine = fs.engine
            done = [0]

            def client_loop(cid):
                client = fs.client()
                for i in range(20):
                    yield LocalCharge(fs.cost.client_overhead_us)
                    yield from client.op_generator("mkdir", f"/c{cid}x{i}")
                    done[0] += 1

            t0 = engine.now
            for cid in range(40):
                engine.spawn(client_loop(cid), client=engine.new_client())
            engine.sim.run()
            return done[0] / (engine.now - t0)

        assert run(4) > 1.5 * run(1)

    def test_cold_walk_pays_per_level_round_trips(self):
        # the cost the single-DMS design avoids: resolving /a/b/c with a
        # cold cache contacts a shard per level
        fs = MultiDMSLocoFS(num_directory_servers=4, num_metadata_servers=1)
        warm = fs.client()
        warm.mkdir("/a")
        warm.mkdir("/a/b")
        warm.mkdir("/a/b/c")
        cold = fs.client()
        served_before = sum(fs.cluster[n].requests_served for n in fs.dms_names)
        cold.stat_dir("/a/b/c")
        served_after = sum(fs.cluster[n].requests_served for n in fs.dms_names)
        assert served_after - served_before == 4  # /, /a, /a/b, /a/b/c

    def test_single_dms_walk_is_one_rpc(self):
        # contrast: the paper's single DMS resolves any depth in one RPC
        from repro.common.config import CacheConfig, ClusterConfig
        from repro.core.fs import LocoFS

        fs = LocoFS(ClusterConfig(num_metadata_servers=1,
                                  cache=CacheConfig(enabled=False)))
        c = fs.client()
        c.mkdir("/a")
        c.mkdir("/a/b")
        c.mkdir("/a/b/c")
        before = fs.cluster["dms"].requests_served
        c.stat_dir("/a/b/c")
        assert fs.cluster["dms"].requests_served == before + 1

    def test_rename_rehashes_directory_records(self):
        fs = MultiDMSLocoFS(num_directory_servers=3, num_metadata_servers=2)
        c = fs.client()
        c.mkdir("/top")
        for i in range(12):
            c.mkdir(f"/top/s{i}")
            c.create(f"/top/s{i}/file")
        c.rename("/top", "/moved")
        # everything still reachable, files untouched (uuid-keyed)
        for i in range(12):
            assert c.stat_file(f"/moved/s{i}/file").is_file
        assert fs.total_directories() == 14  # root + moved + 12

    def test_rmdir_checks_all_shards(self):
        fs = MultiDMSLocoFS(num_directory_servers=3, num_metadata_servers=2)
        c = fs.client()
        c.mkdir("/p")
        c.mkdir("/p/child")
        from repro.common.errors import NotEmpty

        with pytest.raises(NotEmpty):
            c.rmdir("/p")
        c.rmdir("/p/child")
        c.rmdir("/p")

    def test_uuid_uniqueness_across_shards(self):
        fs = MultiDMSLocoFS(num_directory_servers=4, num_metadata_servers=2)
        c = fs.client()
        uuids = set()
        for i in range(30):
            c.mkdir(f"/u{i}")
            uuids.add(c.stat_dir(f"/u{i}").st_uuid)
        assert len(uuids) == 30

    def test_permissions_enforced_on_client_walk(self):
        fs = MultiDMSLocoFS(num_directory_servers=2, num_metadata_servers=2)
        root = fs.client()
        root.mkdir("/locked", mode=0o700)
        root.mkdir("/locked/inner")
        from repro.common.errors import PermissionDenied

        other = fs.client(cred=Credentials(5, 5))
        with pytest.raises(PermissionDenied):
            other.stat_dir("/locked/inner")
