"""Replication: data blocks (object tier) and the replicated DMS.

The data-block half is an extension (the paper evaluates without
replicas); the directory-metadata half covers the LocoFS-R quorum-
replicated log of :mod:`repro.core.repldms` — the ``Quorum`` engine
command, replica convergence, session dedup, leader failover under
crashes (torn WAL tails included), and the drained-namespace
differential against a fault-free run.
"""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import Exists, NoEntry, NotLeader, QuorumFailed
from repro.common.types import ROOT_CRED
from repro.core.fs import LocoFS
from repro.core.fsck import check
from repro.core.objectstore import BlockPlacement
from repro.core.repldms import ReplicatedLocoFS
from repro.metadata.chash import ConsistentHashRing
from repro.sim import Cluster, CostModel, DirectEngine, EventEngine
from repro.sim.faults import FaultSchedule
from repro.sim.replication import ReplicaSet, choose_candidate, election_timeout_us
from repro.sim.rpc import Quorum, Rpc, Sleep


class TestRingLookupN:
    def test_returns_distinct_nodes(self):
        ring = ConsistentHashRing()
        for n in ["a", "b", "c", "d"]:
            ring.add_node(n)
        got = ring.lookup_n(b"key", 3)
        assert len(got) == 3
        assert len(set(got)) == 3

    def test_primary_is_lookup(self):
        ring = ConsistentHashRing()
        for n in ["a", "b", "c"]:
            ring.add_node(n)
        for i in range(50):
            key = f"k{i}".encode()
            assert ring.lookup_n(key, 2)[0] == ring.lookup(key)

    def test_n_clamped_to_node_count(self):
        ring = ConsistentHashRing()
        ring.add_node("only")
        assert ring.lookup_n(b"k", 5) == ["only"]

    def test_deterministic(self):
        r1, r2 = ConsistentHashRing(), ConsistentHashRing()
        for n in ["x", "y", "z"]:
            r1.add_node(n)
            r2.add_node(n)
        assert r1.lookup_n(b"q", 2) == r2.lookup_n(b"q", 2)


class TestBlockPlacement:
    def test_replica_count_clamped(self):
        p = BlockPlacement(["o0", "o1"], replicas=5)
        assert p.replicas == 2

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError):
            BlockPlacement(["o0"], replicas=0)

    def test_replica_sets_distinct(self):
        p = BlockPlacement([f"o{i}" for i in range(5)], replicas=3)
        reps = p.replicas_for(42, 0)
        assert len(set(reps)) == 3
        assert reps[0] == p.locate(42, 0)


class TestReplicatedFS:
    def make(self, replicas):
        return LocoFS(ClusterConfig(num_metadata_servers=2, num_object_servers=4,
                                    data_replicas=replicas))

    def test_writes_create_r_copies(self):
        fs = self.make(3)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"x" * 10000)  # 3 blocks
        total_blocks = sum(s.num_blocks() for s in fs.object_servers)
        assert total_blocks == 3 * 3

    def test_single_replica_unchanged(self):
        fs = self.make(1)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"x" * 10000)
        assert sum(s.num_blocks() for s in fs.object_servers) == 3

    def test_read_roundtrip_with_replication(self):
        fs = self.make(2)
        c = fs.client()
        c.create("/f")
        data = bytes(range(256)) * 40
        c.write("/f", 0, data)
        assert c.read("/f", 0, len(data)) == data

    def test_degraded_read_survives_primary_loss(self):
        fs = self.make(2)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"important" * 500)
        uuid = c.stat_file("/f").st_uuid
        # destroy the primary copy of every block
        for blk in range(2):
            primary = fs.placement.locate(uuid, blk)
            server = fs.object_servers[fs.placement.names.index(primary)]
            from repro.core.objectstore import block_key

            server.store.delete(block_key(uuid, blk))
        assert c.read("/f", 0, 9 * 500) == b"important" * 500

    def test_unreplicated_loss_really_loses_data(self):
        fs = self.make(1)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"gone" * 100)
        uuid = c.stat_file("/f").st_uuid
        from repro.core.objectstore import block_key

        primary = fs.placement.locate(uuid, 0)
        server = fs.object_servers[fs.placement.names.index(primary)]
        server.store.delete(block_key(uuid, 0))
        assert c.read("/f", 0, 400) != b"gone" * 100

    def test_unlink_removes_all_replicas(self):
        fs = self.make(3)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"z" * 8000)
        c.unlink("/f")
        assert sum(s.num_blocks() for s in fs.object_servers) == 0

    def test_fsck_clean_with_replicas(self):
        fs = self.make(2)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.write("/d/f", 0, b"q" * 5000)
        report = check(fs)
        assert report.clean, report.errors

    def test_replicated_write_latency_overhead(self):
        # replicas fan out in parallel but share the client uplink, so the
        # cost at small sizes is modest and grows with payload
        def write_latency(replicas, size):
            fs = self.make(replicas)
            c = fs.client()
            c.create("/f")
            t0 = fs.engine.now
            c.write("/f", 0, b"x" * size)
            return fs.engine.now - t0

        small_1, small_3 = write_latency(1, 512), write_latency(3, 512)
        big_1, big_3 = write_latency(1, 1 << 20), write_latency(3, 1 << 20)
        assert small_3 < 1.6 * small_1  # latency-bound: cheap
        assert big_3 > 2.0 * big_1  # bandwidth-bound: ~3x the bytes on the wire


# -- the Quorum engine command ------------------------------------------------------


class _VoteHandler:
    """Toy quorum participant: op_charge succeeds after a metered delay,
    op_deny fails fast (an application-level 'no' vote)."""

    def __init__(self):
        self.meter = None
        self.calls = 0

    def attach_meter(self, meter):
        self.meter = meter

    def op_charge(self, us):
        self.meter.charge_us(us)
        self.calls += 1
        return us

    def op_deny(self, us):
        self.meter.charge_us(us)
        raise NoEntry("deny")


def _quorum_cluster(n=3):
    cost = CostModel(rtt_us=100.0, server_overhead_us=0.0)
    cluster = Cluster(cost)
    handlers = [_VoteHandler() for _ in range(n)]
    for i, h in enumerate(handlers):
        cluster.add(f"s{i}", h)
    return cluster, cost, handlers


@pytest.fixture(params=["direct", "event"])
def quorum_engine(request):
    def make(n=3):
        cluster, cost, handlers = _quorum_cluster(n)
        eng = (DirectEngine(cluster, cost) if request.param == "direct"
               else EventEngine(cluster, cost))
        return eng, cost, handlers

    return make


class TestQuorumCommand:
    """Engine semantics of ``yield Quorum(...)`` — both engines."""

    def test_resumes_at_kth_success(self, quorum_engine):
        eng, _, handlers = quorum_engine()

        def g():
            results = yield Quorum(
                [Rpc(f"s{i}", "charge", (us,))
                 for i, us in enumerate((100.0, 300.0, 500.0))], 2)
            # the clock *at resume* is the 2nd success (rtt + 300us
            # service), not the slowest branch — sample it inside the
            # generator; the event engine still drains late branches
            # afterwards, so the post-run clock is not the right probe
            return eng.now, results

        resume_t, results = eng.run(g())
        assert resume_t == pytest.approx(400.0)
        # the slower branch is still in flight at resume: reported None
        assert results == [100.0, 300.0, None]
        # ... but it did execute on its server
        assert handlers[2].calls == 1

    def test_down_server_does_not_stall_quorum(self, quorum_engine):
        eng, cost, _ = quorum_engine()
        eng.attach_faults(FaultSchedule().crash("s2", 0.5))

        def g():
            results = yield Quorum(
                [Rpc(f"s{i}", "charge", (100.0,)) for i in range(3)], 2)
            return eng.now, results

        resume_t, results = eng.run(g())
        # two live votes suffice; the client does NOT wait out the dead
        # branch's timeout before resuming
        assert resume_t == pytest.approx(200.0)
        assert resume_t < cost.timeout_us
        assert results[0] == 100.0 and results[1] == 100.0
        assert results[2] is None

    def test_unreachable_quorum_raises_at_deciding_failure(self, quorum_engine):
        eng, _, _ = quorum_engine()

        def g():
            try:
                yield Quorum([Rpc(f"s{i}", "deny", (50.0,)) for i in range(3)],
                             2)
            except QuorumFailed:
                return eng.now
            return None

        decided_at = eng.run(g())
        # with k=2 of n=3, the (n-k+1) = 2nd failure decides; a fast
        # application-level 'no' (rtt + 50us service) is not a timeout
        assert decided_at == pytest.approx(150.0)

    def test_single_branch_reraises_own_error(self, quorum_engine):
        # n == 1: the branch's own error is more useful than QuorumFailed
        # (the replicated client steers on NotLeader's hint)
        eng, _, _ = quorum_engine()

        def g():
            yield Quorum([Rpc("s0", "deny", (50.0,))], 1)

        with pytest.raises(NoEntry):
            eng.run(g())

    def test_engine_timing_identical_across_engines(self):
        def run(kind):
            cluster, cost, _ = _quorum_cluster()
            eng = (DirectEngine(cluster, cost) if kind == "direct"
                   else EventEngine(cluster, cost))

            def g():
                yield Quorum([Rpc(f"s{i}", "charge", (us,))
                              for i, us in enumerate((150.0, 250.0, 900.0))], 2)
                return eng.now

            return eng.run(g())

        assert run("direct") == run("event")


# -- replication-plane policy helpers -----------------------------------------------


class TestReplicationPolicy:
    def test_majority_arithmetic(self):
        assert ReplicaSet("p", ["a"]).majority == 1
        assert ReplicaSet("p", ["a", "b", "c"]).majority == 2
        assert ReplicaSet("p", ["a", "b", "c", "d", "e"]).majority == 3
        assert ReplicaSet("p", ["a", "b", "c"]).followers("b") == ["a", "c"]
        with pytest.raises(ValueError):
            ReplicaSet("p", [])

    def test_election_timeout_deterministic_and_decorrelated(self):
        a = election_timeout_us(0, actor=1, attempt=0)
        assert a == election_timeout_us(0, actor=1, attempt=0)
        assert a != election_timeout_us(0, actor=2, attempt=0)
        assert a != election_timeout_us(1, actor=1, attempt=0)
        # repeated attempts widen the window (linearly growing spread)
        from repro.sim.replication import ELECTION_BASE_US, ELECTION_SPREAD_US

        for attempt in range(5):
            t = election_timeout_us(0, actor=1, attempt=attempt)
            assert ELECTION_BASE_US <= t <= (
                ELECTION_BASE_US + ELECTION_SPREAD_US * (attempt + 1))

    def test_choose_candidate_freshest_log_wins(self):
        names = ["r0", "r1", "r2"]
        s = [{"last_term": 2, "last_index": 5},
             {"last_term": 3, "last_index": 1},
             {"last_term": 2, "last_index": 9}]
        assert choose_candidate(s, names) == "r1"  # term beats index
        s[1] = None  # unreachable: skipped
        assert choose_candidate(s, names) == "r2"
        assert choose_candidate([None, None, None], names) is None

    def test_choose_candidate_ties_break_on_order(self):
        names = ["r0", "r1"]
        s = [{"last_term": 1, "last_index": 4},
             {"last_term": 1, "last_index": 4}]
        assert choose_candidate(s, names) == "r0"


# -- the replicated, partitioned DMS (LocoFS-R) -------------------------------------


def _rfs(tmp_path=None, subdir="rfs", **kw):
    kw.setdefault("num_metadata_servers", 2)
    kw.setdefault("num_object_servers", 2)
    if tmp_path is not None:
        kw.setdefault("data_dir", str(tmp_path / subdir))
    return ReplicatedLocoFS(**kw)


class TestReplicatedDMS:
    def test_mutations_converge_on_every_replica(self):
        fs = _rfs()
        c = fs.client()
        c.mkdir("/a")
        c.mkdir("/a/b")
        c.create("/a/f")
        c.chmod("/a", 0o700)
        c.mkdir("/a/b/c")
        c.rmdir("/a/b/c")
        for part, names in fs.partitions.items():
            reps = [fs.replicas[n] for n in names]
            assert len({r.last_index for r in reps}) == 1, part
            assert len({r.last_term for r in reps}) == 1, part
            assert len({r.num_directories() for r in reps}) == 1, part
        assert c.stat_dir("/a").st_mode & 0o7777 == 0o700
        fs.close()

    def test_follower_refuses_proposals_and_reads(self):
        fs = _rfs()
        follower = fs.partitions["rdms0"][1]

        def propose():
            yield Rpc(follower, "rlog_propose",
                      ("shard_setattr", ("/", ROOT_CRED, 0.0, 0o700, None, None),
                       99, 1))

        def read():
            yield Rpc(follower, "rread", ("shard_lookup", ("/",)))

        with pytest.raises(NotLeader):
            fs.engine.run(propose())
        with pytest.raises(NotLeader):
            fs.engine.run(read())
        fs.close()

    def test_session_dedup_replays_cached_answer(self):
        # a retried propose (same client, same seq) must not append a
        # second log entry — it re-hands the client the sealed bytes
        fs = _rfs()
        leader = fs.partitions["rdms0"][0]

        def propose():
            return (yield Rpc(leader, "rlog_propose",
                              ("shard_setattr",
                               ("/", ROOT_CRED, 0.0, 0o750, None, None), 7, 1)))

        r1 = fs.engine.run(propose())
        idx = fs.replicas[leader].last_index
        r2 = fs.engine.run(propose())
        assert r2["index"] == r1["index"]
        assert r2["entry"] == r1["entry"]
        assert fs.replicas[leader].last_index == idx
        fs.close()

    def test_deterministic_failures_are_not_logged(self):
        fs = _rfs()
        c = fs.client()
        c.mkdir("/dup")
        before = sum(r.last_index for r in fs.replicas.values())
        with pytest.raises(Exists):
            c.mkdir("/dup")
        assert sum(r.last_index for r in fs.replicas.values()) == before
        fs.close()


class TestLeaderFailover:
    """Crash partition 0's initial leader mid-run: a quorum survives,
    a deterministic election installs a replacement, no acked op is lost."""

    def _crash_leader(self, fs, torn_tail_bytes=0):
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash("rdms0.0", t + 1.0,
                                  torn_tail_bytes=torn_tail_bytes))

    def test_election_installs_new_leader_and_work_continues(self, tmp_path):
        fs = _rfs(tmp_path)
        c = fs.client()
        for i in range(6):
            c.mkdir(f"/d{i}")
        self._crash_leader(fs)
        for i in range(6, 12):
            c.mkdir(f"/d{i}")
        assert {f"d{i}" for i in range(12)} <= {e.name for e in c.readdir("/")}
        leader = fs.partition_leader("rdms0")
        assert leader.role == "leader"
        assert leader.my_name != "rdms0.0"
        assert leader.term > 1  # the election bumped the term
        fs.close()

    def test_leader_kill_mid_commit_torn_tail(self, tmp_path):
        # tear bytes off the victim's WAL (crash mid-group-commit): the
        # torn tail only loses *local* state — every acked op already
        # lives on a quorum, so the survivors' namespace is intact
        fs = _rfs(tmp_path)
        c = fs.client()
        for i in range(8):
            c.mkdir(f"/t{i}")
        self._crash_leader(fs, torn_tail_bytes=64)
        for i in range(8, 12):
            c.mkdir(f"/t{i}")
        assert {f"t{i}" for i in range(12)} <= {e.name for e in c.readdir("/")}
        fs.close()

    def test_crashed_leader_replays_and_rejoins_as_follower(self, tmp_path):
        fs = _rfs(tmp_path)
        c = fs.client()
        for i in range(6):
            c.mkdir(f"/r{i}")
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("rdms0.0", t + 1.0, 2_000.0,
                                          torn_tail_bytes=32))
        for i in range(6, 12):
            c.mkdir(f"/r{i}")

        def advance():
            yield Sleep(50_000.0)

        fs.engine.run(advance())
        c.stat_dir("/r0")  # any RPC processes the due restart event
        victim = fs.replicas["rdms0.0"]
        assert victim.role == "follower"  # never a leader after restart
        leader = fs.partition_leader("rdms0")
        assert leader.my_name != "rdms0.0"
        # WAL replay recovered a prefix; the torn tail can only trail
        assert victim.last_index <= leader.last_index
        fs.close()

    def test_drained_namespace_matches_no_fault_run(self, tmp_path):
        # differential: the surviving namespace after a leader crash +
        # failover is exactly the namespace a fault-free run builds
        def build(subdir, fault):
            fs = _rfs(tmp_path, subdir=subdir)
            c = fs.client()
            c.mkdir("/base")
            if fault:
                self._crash_leader(fs, torn_tail_bytes=16)
            for i in range(10):
                c.mkdir(f"/base/d{i}")
                c.create(f"/base/f{i}")
            listing = sorted(e.name for e in c.readdir("/base"))
            stats = [c.stat_dir(f"/base/d{i}").st_uuid is not None
                     for i in range(10)]
            totals = (fs.total_directories(), fs.total_files())
            fs.close()
            return listing, stats, totals

        assert build("faulted", True) == build("clean", False)

    def test_availability_harness_zero_lost_acked(self, tmp_path):
        # the fig19 acceptance property at smoke scale: a leader crash
        # mid-wave loses nothing that was acknowledged
        from repro.harness import run_availability

        r = run_availability(
            "locofs-r", num_servers=2, crash_server="rdms0.0",
            num_clients=4, items_per_client=10, seed=0,
            data_dir=str(tmp_path / "avail"))
        assert r.crashes == 1
        assert r.lost_acked == 0
        assert r.failed_ops == 0
        assert r.goodput_iops > 0.0
        assert r.goodput_iops > 0.5 * r.baseline_iops
