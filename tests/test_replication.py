"""Data replication (extension: the paper evaluates without replicas)."""

import pytest

from repro.common.config import ClusterConfig
from repro.core.fs import LocoFS
from repro.core.fsck import check
from repro.core.objectstore import BlockPlacement
from repro.metadata.chash import ConsistentHashRing


class TestRingLookupN:
    def test_returns_distinct_nodes(self):
        ring = ConsistentHashRing()
        for n in ["a", "b", "c", "d"]:
            ring.add_node(n)
        got = ring.lookup_n(b"key", 3)
        assert len(got) == 3
        assert len(set(got)) == 3

    def test_primary_is_lookup(self):
        ring = ConsistentHashRing()
        for n in ["a", "b", "c"]:
            ring.add_node(n)
        for i in range(50):
            key = f"k{i}".encode()
            assert ring.lookup_n(key, 2)[0] == ring.lookup(key)

    def test_n_clamped_to_node_count(self):
        ring = ConsistentHashRing()
        ring.add_node("only")
        assert ring.lookup_n(b"k", 5) == ["only"]

    def test_deterministic(self):
        r1, r2 = ConsistentHashRing(), ConsistentHashRing()
        for n in ["x", "y", "z"]:
            r1.add_node(n)
            r2.add_node(n)
        assert r1.lookup_n(b"q", 2) == r2.lookup_n(b"q", 2)


class TestBlockPlacement:
    def test_replica_count_clamped(self):
        p = BlockPlacement(["o0", "o1"], replicas=5)
        assert p.replicas == 2

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError):
            BlockPlacement(["o0"], replicas=0)

    def test_replica_sets_distinct(self):
        p = BlockPlacement([f"o{i}" for i in range(5)], replicas=3)
        reps = p.replicas_for(42, 0)
        assert len(set(reps)) == 3
        assert reps[0] == p.locate(42, 0)


class TestReplicatedFS:
    def make(self, replicas):
        return LocoFS(ClusterConfig(num_metadata_servers=2, num_object_servers=4,
                                    data_replicas=replicas))

    def test_writes_create_r_copies(self):
        fs = self.make(3)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"x" * 10000)  # 3 blocks
        total_blocks = sum(s.num_blocks() for s in fs.object_servers)
        assert total_blocks == 3 * 3

    def test_single_replica_unchanged(self):
        fs = self.make(1)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"x" * 10000)
        assert sum(s.num_blocks() for s in fs.object_servers) == 3

    def test_read_roundtrip_with_replication(self):
        fs = self.make(2)
        c = fs.client()
        c.create("/f")
        data = bytes(range(256)) * 40
        c.write("/f", 0, data)
        assert c.read("/f", 0, len(data)) == data

    def test_degraded_read_survives_primary_loss(self):
        fs = self.make(2)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"important" * 500)
        uuid = c.stat_file("/f").st_uuid
        # destroy the primary copy of every block
        for blk in range(2):
            primary = fs.placement.locate(uuid, blk)
            server = fs.object_servers[fs.placement.names.index(primary)]
            from repro.core.objectstore import block_key

            server.store.delete(block_key(uuid, blk))
        assert c.read("/f", 0, 9 * 500) == b"important" * 500

    def test_unreplicated_loss_really_loses_data(self):
        fs = self.make(1)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"gone" * 100)
        uuid = c.stat_file("/f").st_uuid
        from repro.core.objectstore import block_key

        primary = fs.placement.locate(uuid, 0)
        server = fs.object_servers[fs.placement.names.index(primary)]
        server.store.delete(block_key(uuid, 0))
        assert c.read("/f", 0, 400) != b"gone" * 100

    def test_unlink_removes_all_replicas(self):
        fs = self.make(3)
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"z" * 8000)
        c.unlink("/f")
        assert sum(s.num_blocks() for s in fs.object_servers) == 0

    def test_fsck_clean_with_replicas(self):
        fs = self.make(2)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.write("/d/f", 0, b"q" * 5000)
        report = check(fs)
        assert report.clean, report.errors

    def test_replicated_write_latency_overhead(self):
        # replicas fan out in parallel but share the client uplink, so the
        # cost at small sizes is modest and grows with payload
        def write_latency(replicas, size):
            fs = self.make(replicas)
            c = fs.client()
            c.create("/f")
            t0 = fs.engine.now
            c.write("/f", 0, b"x" * size)
            return fs.engine.now - t0

        small_1, small_3 = write_latency(1, 512), write_latency(3, 512)
        big_1, big_3 = write_latency(1, 1 << 20), write_latency(3, 1 << 20)
        assert small_3 < 1.6 * small_1  # latency-bound: cheap
        assert big_3 > 2.0 * big_1  # bandwidth-bound: ~3x the bytes on the wire
