"""Streaming telemetry: sketches, windows, bounded memory, engine feeds."""

import json
import math

import pytest

from repro.harness.runner import run_throughput
from repro.obs.telemetry import (
    DEFAULT_MAX_WINDOWS,
    INGEST_BUFFER,
    SKETCH_BUCKETS,
    LogSketch,
    TelemetrySink,
)


def _percentile(sorted_values, q):
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


# ---------------------------------------------------------------------------
# LogSketch
# ---------------------------------------------------------------------------

def test_sketch_quantiles_vs_exact():
    import random
    rng = random.Random(11)
    values = [rng.lognormvariate(4.0, 1.0) for _ in range(5000)]
    sk = LogSketch()
    for v in values:
        sk.record(v)
    values.sort()
    for q in (0.5, 0.95, 0.99):
        # one bucket spans 10**(1/8) ≈ 1.33x; allow about one bucket
        assert sk.quantile(q) == pytest.approx(_percentile(values, q), rel=0.35)
    assert sk.count == 5000
    assert sk.minimum == values[0] and sk.maximum == values[-1]
    assert sk.quantile(0.0) >= 0.0
    assert sk.quantile(1.0) <= values[-1]


def test_sketch_merge_equals_union():
    import random
    rng = random.Random(5)
    a_vals = [rng.expovariate(0.01) for _ in range(800)]
    b_vals = [rng.expovariate(0.001) for _ in range(800)]
    a, b, u = LogSketch(), LogSketch(), LogSketch()
    for v in a_vals:
        a.record(v)
        u.record(v)
    for v in b_vals:
        b.record(v)
        u.record(v)
    a.merge(b)
    assert a.counts == u.counts
    assert a.count == u.count
    assert a.total == pytest.approx(u.total)
    assert a.minimum == u.minimum and a.maximum == u.maximum
    for q in (0.5, 0.99):
        assert a.quantile(q) == u.quantile(q)


def test_sketch_count_above():
    sk = LogSketch()
    for v in (10.0,) * 90 + (1000.0,) * 10:
        sk.record(v)
    assert sk.count_above(100.0) == pytest.approx(10.0, abs=1.0)
    assert sk.count_above(5000.0) == 0.0
    assert sk.count_above(1.0) == 100.0


def test_sketch_under_and_overflow_buckets():
    sk = LogSketch()
    sk.record(0.0)     # underflow
    sk.record(1e12)    # overflow
    assert sk.counts[0] == 1
    assert sk.counts[SKETCH_BUCKETS - 1] == 1
    assert sk.quantile(0.0) >= 0.0
    assert math.isfinite(sk.quantile(0.5))


def test_sketch_sparse_roundtrip():
    sk = LogSketch()
    for v in (3.0, 50.0, 50.0, 8000.0):
        sk.record(v)
    back = LogSketch.from_sparse(sk.to_sparse(), minimum=sk.minimum,
                                 maximum=sk.maximum, total=sk.total)
    assert back.counts == sk.counts
    assert back.count == sk.count
    assert back.quantile(0.5) == sk.quantile(0.5)


# ---------------------------------------------------------------------------
# TelemetrySink windowing and ring bounds
# ---------------------------------------------------------------------------

def test_ops_land_in_their_windows():
    sink = TelemetrySink(window_us=100.0, max_windows=64)
    sink.op_complete("client.create", 10.0, 50.0)
    sink.op_complete("client.create", 120.0, 150.0)
    sink.op_complete("client.stat", 120.0, 160.0)
    assert sink.count_ops("client.create") == 2
    assert sink.count_ops("client.create", 0.0, 100.0) == 1
    assert sink.count_ops("client.create", 100.0, 200.0) == 1
    assert sink.op_names() == ["client.create", "client.stat"]
    assert sink.total_ops == 3


def test_errors_counted_separately():
    sink = TelemetrySink(window_us=100.0)
    sink.op_complete("client.create", 0.0, 10.0)
    sink.op_complete("client.create", 0.0, 20.0, error="FSError")
    assert sink.count_ops("client.create") == 1
    assert sink.count_ops("client.create", errors=True) == 1
    assert sink.total_ops == 1 and sink.total_errors == 1
    # errors do not pollute the latency sketch
    assert sink.merged_sketch("client.create").count == 1


def test_ring_halves_and_conserves_counts():
    sink = TelemetrySink(window_us=10.0, max_windows=8)
    n = 200
    for i in range(n):
        t = float(i * 10)  # one op per initial window, 200 windows' worth
        sink.op_complete("client.create", t, t + 1.0)
    assert sink.n_windows <= 8
    assert sink.window_us > 10.0  # doubled at least once
    assert sink.window_us == 10.0 * 2 ** round(math.log2(sink.window_us / 10.0))
    assert sink.count_ops("client.create") == n  # nothing lost in merges
    assert sink.merged_sketch("client.create").count == n


def test_window_cache_survives_halving():
    # regression: the window-lookup cache must be invalidated when the
    # ring halves, or samples land in a merged-away window
    sink = TelemetrySink(window_us=10.0, max_windows=4)
    for i in range(100):
        t = float(i * 10)
        sink.op_complete("client.create", t, t + 0.5)
        sink.rpc_complete("dms0", t, t, 0.5)
    assert sink.count_ops("client.create") == 100
    total_requests = sum(
        w.servers["dms0"].requests for w in sink._windows if "dms0" in w.servers)
    assert total_requests == 100


def test_rpc_complete_splits_busy_across_windows():
    sink = TelemetrySink(window_us=100.0)
    # service interval [50, 250) spans three 100µs windows: 50 + 100 + 50
    sink.rpc_complete("dms0", 50.0, 50.0, 200.0)
    sink._drain()
    busy = [w.servers["dms0"].busy_us if "dms0" in w.servers else 0.0
            for w in sink._windows]
    assert busy[0] == pytest.approx(50.0)
    assert busy[1] == pytest.approx(100.0)
    assert busy[2] == pytest.approx(50.0)
    assert sum(busy) == pytest.approx(200.0)


def test_rpc_complete_folds_queue_depth():
    sink = TelemetrySink(window_us=100.0)
    sink.rpc_complete("dms0", 10.0, 12.0, 5.0, depth=3)
    sink.rpc_complete("dms0", 20.0, 25.0, 5.0, depth=7)
    sink._drain()
    cell = sink._windows[0].servers["dms0"]
    assert cell.depth_sum == 10 and cell.depth_n == 2 and cell.depth_max == 7
    assert cell.queue_wait_us == pytest.approx((12.0 - 10.0) + (25.0 - 20.0))


def test_batch_occupancy_recorded():
    sink = TelemetrySink(window_us=100.0)
    sink.rpc_complete("fms0", 10.0, 10.0, 30.0, n_ops=8, batch=True)
    sink._drain()
    cell = sink._windows[0].servers["fms0"]
    assert cell.batches == 1 and cell.batched_ops == 8


def test_marks_counted():
    sink = TelemetrySink(window_us=100.0)
    sink.mark("client.retry", 10.0)
    sink.mark("client.retry", 150.0)
    sink.mark("client.gaveup", 160.0)
    assert sink.mark_total("client.retry") == 2
    assert sink.mark_total("client.gaveup") == 1
    assert sink.mark_total("client.retry", 100.0, 200.0) == 1


def test_heat_timelines_shape():
    sink = TelemetrySink(window_us=100.0)
    sink.rpc_complete("dms0", 10.0, 10.0, 50.0, depth=2)
    sink.rpc_complete("fms0", 110.0, 110.0, 80.0, depth=1)
    heat = sink.heat_timelines()
    assert heat["window_us"] == 100.0
    assert set(heat["servers"]) == {"dms0", "fms0"}
    lanes = heat["servers"]["dms0"]
    n = sink.n_windows
    assert len(lanes["busy"]) == n and len(lanes["queue_depth"]) == n
    assert lanes["busy"][0] == pytest.approx(0.5)
    assert heat["servers"]["fms0"]["busy"][1] == pytest.approx(0.8)
    assert all(0.0 <= b <= 1.0 for lane in heat["servers"].values()
               for b in lane["busy"])


# ---------------------------------------------------------------------------
# buffered ingest
# ---------------------------------------------------------------------------

def test_buffered_ingest_drains_on_query_and_on_cap():
    sink = TelemetrySink(window_us=100.0)
    for i in range(10):
        sink.op_complete("client.create", float(i), float(i) + 1.0)
    assert len(sink._buf) == 10       # nothing folded yet
    assert sink.count_ops("client.create") == 10  # query drains
    assert len(sink._buf) == 0
    # the cap forces a fold even with no queries at all
    for i in range(INGEST_BUFFER + 5):
        sink.mark("m", float(i % 50))
    assert len(sink._buf) < INGEST_BUFFER
    assert sink.mark_total("m") == INGEST_BUFFER + 5 + 0


def test_buffered_ingest_equals_eager_order():
    # interleaved hook calls must fold to the same state as eager calls
    a, b = TelemetrySink(window_us=50.0), TelemetrySink(window_us=50.0)
    events = [(12.0, "client.create"), (61.0, "client.stat"),
              (62.0, "client.create"), (130.0, "client.create")]
    for t, op in events:
        a.op_complete(op, t - 10.0, t)
        a.rpc_complete("dms0", t, t, 3.0, depth=1)
        a.mark("client.retry", t)
    for t, op in events:  # b folds eagerly, one event at a time
        b.op_complete(op, t - 10.0, t)
        b._drain()
        b.rpc_complete("dms0", t, t, 3.0, depth=1)
        b._drain()
        b.mark("client.retry", t)
        b._drain()
    assert a.snapshot() == b.snapshot()


def test_clear_resets_everything():
    sink = TelemetrySink(window_us=100.0)
    sink.op_complete("client.create", 0.0, 10.0)
    sink.mark("m", 5.0)
    sink.clear()
    assert sink.total_ops == 0 and sink.total_errors == 0
    assert sink.n_windows == 0
    assert sink.snapshot()["windows"] == []


# ---------------------------------------------------------------------------
# bounded memory
# ---------------------------------------------------------------------------

def test_snapshot_is_o_windows_not_o_ops():
    """A 1M-op ingest keeps the ring bounded and the snapshot under 1 MB."""
    sink = TelemetrySink(window_us=64.0, max_windows=DEFAULT_MAX_WINDOWS)
    n = 1_000_000
    for i in range(n):
        t = i * 2.0
        sink.op_complete("client.create", t - 40.0, t)
        if i % 64 == 0:
            sink.rpc_complete("dms%d" % (i % 4), t, t + 1.0, 10.0,
                              depth=i % 7)
    assert sink.total_ops == n
    assert sink.n_windows <= DEFAULT_MAX_WINDOWS
    assert len(sink._buf) < INGEST_BUFFER
    blob = json.dumps(sink.snapshot())
    assert len(blob) < 1_000_000, f"snapshot {len(blob)} bytes"
    assert sink.count_ops("client.create") == n


# ---------------------------------------------------------------------------
# engine feeds
# ---------------------------------------------------------------------------

def test_event_engine_feeds_telemetry():
    sink = TelemetrySink()
    r = run_throughput("locofs-c", 4, op="touch", items_per_client=6,
                       client_scale=0.2, telemetry=sink)
    assert sink.count_ops("client.create") == r.total_ops
    sk = sink.merged_sketch("client.create")
    assert sk.count == r.total_ops
    assert sk.quantile(0.5) > 0.0
    assert len(sink.server_names()) >= 2  # dms + fms fleet visible
    snap = sink.snapshot()
    assert snap["totals"]["ops"]["client.create"] == r.total_ops
    assert snap["heat"]["servers"]


def test_direct_engine_feeds_telemetry():
    from repro.harness.mdtest import run_latency

    sink = TelemetrySink()
    rec = run_latency("locofs-c", 4, n_items=8, telemetry=sink,
                      ops=("file-stat",))
    assert rec.count("file-stat") == 8
    assert sink.count_ops("client.stat_file") >= 8
    assert sink.count_ops("client.create") >= 8  # setup creates flow too
    assert sink.merged_sketch("client.stat_file").count >= 8


def test_telemetry_attached_clock_identical():
    """The sink observes; it must never perturb virtual time."""
    plain = run_throughput("locofs-c", 4, op="touch", items_per_client=6,
                           client_scale=0.2)
    attached = run_throughput("locofs-c", 4, op="touch", items_per_client=6,
                              client_scale=0.2, telemetry=TelemetrySink())
    assert attached.elapsed_us == plain.elapsed_us  # bit-identical clock
    assert attached.total_ops == plain.total_ops
    assert attached.iops == plain.iops
