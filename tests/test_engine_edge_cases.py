"""Edge cases for the RPC engines beyond the happy path."""

import pytest

from repro.common.errors import NoEntry
from repro.kv import HashStore
from repro.sim import Cluster, CostModel, DirectEngine, EventEngine, Parallel, Rpc, Sleep
from repro.sim.rpc import LocalCharge


class Handler:
    def __init__(self):
        self.store = None

    def attach_meter(self, meter):
        self.store = HashStore(meter=meter)

    def op_ok(self, x=None):
        return x

    def op_fail(self):
        raise NoEntry("nope")

    def op_charge(self, us):
        self.store.meter.charge_us(us)
        return us

    def op_crash(self):
        raise RuntimeError("not an FSError: a server bug")


def build(n=3, **kw):
    cost = CostModel(**kw)
    cluster = Cluster(cost)
    for i in range(n):
        cluster.add(f"s{i}", Handler())
    return cluster, cost


@pytest.fixture(params=["direct", "event"])
def engine(request):
    cluster, cost = build(rtt_us=100.0, server_overhead_us=0.0, conn_switch_us=0.0)
    if request.param == "direct":
        return DirectEngine(cluster, cost)
    return EventEngine(cluster, cost)


class TestParallelEdgeCases:
    def test_empty_parallel_resolves_immediately(self, engine):
        def g():
            results = yield Parallel([])
            return results

        assert engine.run(g()) == []

    def test_parallel_error_surfaces_after_all_complete(self, engine):
        def g():
            try:
                yield Parallel([Rpc("s0", "ok", (1,)), Rpc("s1", "fail"),
                                Rpc("s2", "ok", (3,))])
            except NoEntry:
                return "caught"
            return "missed"

        assert engine.run(g()) == "caught"

    def test_parallel_multiple_errors_first_wins(self, engine):
        def g():
            try:
                yield Parallel([Rpc("s0", "fail"), Rpc("s1", "fail")])
            except NoEntry as e:
                return "caught"

        assert engine.run(g()) == "caught"

    def test_parallel_to_same_server_serializes_service(self, engine):
        def g():
            yield Parallel([Rpc("s0", "charge", (100.0,)),
                            Rpc("s0", "charge", (100.0,))])

        engine.run(g())
        # one RTT overlapped, but the single server works 200us sequentially
        assert engine.now == pytest.approx(300.0)

    def test_parallel_results_keep_order(self, engine):
        def g():
            return (yield Parallel([Rpc("s2", "ok", ("c",)), Rpc("s0", "ok", ("a",)),
                                    Rpc("s1", "ok", ("b",))]))

        assert engine.run(g()) == ["c", "a", "b"]


class TestGeneratorShapes:
    def test_nested_yield_from(self, engine):
        def inner():
            v = yield Rpc("s0", "ok", (21,))
            return v * 2

        def outer():
            v = yield from inner()
            yield Sleep(10.0)
            return v

        assert engine.run(outer()) == 42

    def test_generator_with_no_commands(self, engine):
        def g():
            return "instant"
            yield  # pragma: no cover

        assert engine.run(g()) == "instant"
        assert engine.now == pytest.approx(0.0)

    def test_local_charge(self, engine):
        def g():
            yield LocalCharge(77.0)

        engine.run(g())
        assert engine.now == pytest.approx(77.0)

    def test_unknown_command_rejected(self, engine):
        def g():
            yield "not a command"

        with pytest.raises(TypeError):
            engine.run(g())

    def test_server_bug_propagates(self, engine):
        def g():
            yield Rpc("s0", "crash")

        with pytest.raises(RuntimeError):
            engine.run(g())


class TestEventEngineSpecifics:
    def test_spawn_many_interleaved(self):
        cluster, cost = build(n=1, rtt_us=10.0, server_overhead_us=0.0)
        eng = EventEngine(cluster, cost)
        done = []

        def client(i):
            yield Rpc("s0", "charge", (5.0,))
            yield Sleep(1.0)
            yield Rpc("s0", "charge", (5.0,))
            done.append(i)

        for i in range(20):
            eng.spawn(client(i), client=eng.new_client())
        eng.sim.run()
        assert sorted(done) == list(range(20))

    def test_on_done_receives_exception(self):
        cluster, cost = build(n=1)
        eng = EventEngine(cluster, cost)
        box = {}

        def g():
            yield Rpc("s0", "fail")

        eng.spawn(g(), lambda v, e: box.update(v=v, e=e))
        eng.sim.run()
        assert isinstance(box["e"], NoEntry)

    def test_uplink_serializes_parallel_sends(self):
        cluster, cost = build(n=2, rtt_us=0.0, server_overhead_us=0.0,
                              bandwidth_bpus=1.0)
        eng = EventEngine(cluster, cost)

        def g():
            yield Parallel([Rpc("s0", "ok", (1,), send_bytes=100),
                            Rpc("s1", "ok", (2,), send_bytes=100)])

        eng.run(g())
        # both payloads must cross the client's single uplink: >= 200us
        assert eng.now >= 200.0

    def test_direct_engine_downlink_serializes_receives(self):
        cluster, cost = build(n=2, rtt_us=0.0, server_overhead_us=0.0,
                              bandwidth_bpus=1.0)
        eng = DirectEngine(cluster, cost)

        def g():
            yield Parallel([Rpc("s0", "ok", (1,), recv_bytes=100),
                            Rpc("s1", "ok", (2,), recv_bytes=100)])

        eng.run(g())
        assert eng.now >= 200.0

    def test_reset_clock(self):
        cluster, cost = build(n=1)
        eng = DirectEngine(cluster, cost)

        def g():
            yield Rpc("s0", "ok", (1,))

        eng.run(g())
        assert eng.now > 0
        eng.reset_clock()
        assert eng.now == 0.0
        assert cluster["s0"].next_free == 0.0
