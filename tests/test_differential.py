"""Differential testing: every system vs a model-filesystem oracle.

A pure-Python in-memory tree defines the intended semantics.  Hypothesis
generates random operation sequences; each sequence runs against the
oracle and against every real implementation (LocoFS cached/uncached,
multi-DMS, and the four baselines).  Outcomes (success or error *type*)
and the final namespace (paths, kinds, sizes, file contents) must match
exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import pathutil
from repro.common.config import (
    BatchConfig,
    CacheConfig,
    ClusterConfig,
    LookupCacheConfig,
)
from repro.common.errors import (
    Exists,
    FSError,
    InvalidArgument,
    IsADirectory,
    NoEntry,
    NotADirectory,
    NotEmpty,
)
from repro.core.fs import LocoFS
from repro.core.multidms import MultiDMSLocoFS
from repro.baselines import CephFSSystem, GlusterSystem, IndexFSSystem, LustreSystem


class ModelFS:
    """Oracle: a dict-based tree with the repository's FS semantics."""

    def __init__(self) -> None:
        self.dirs: set[str] = {"/"}
        self.files: dict[str, bytes] = {}

    # -- helpers -------------------------------------------------------------
    def _parent_dir(self, path: str) -> str:
        parent, _ = pathutil.split(path)
        if parent not in self.dirs:
            raise NoEntry(parent)
        return parent

    def _exists(self, path: str) -> bool:
        return path in self.dirs or path in self.files

    # -- ops ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        path = pathutil.normalize(path)
        if path == "/":
            raise Exists(path)
        self._parent_dir(path)
        if self._exists(path):
            raise Exists(path)
        self.dirs.add(path)

    def create(self, path: str) -> None:
        path = pathutil.normalize(path)
        self._parent_dir(path)
        if self._exists(path):
            raise Exists(path)
        self.files[path] = b""

    def unlink(self, path: str) -> None:
        path = pathutil.normalize(path)
        self._parent_dir(path)
        if path not in self.files:
            raise NoEntry(path)
        del self.files[path]

    def rmdir(self, path: str) -> None:
        path = pathutil.normalize(path)
        if path == "/":
            raise InvalidArgument(path, "root")
        if path not in self.dirs:
            raise NoEntry(path)
        if self._children(path):
            raise NotEmpty(path)
        self.dirs.discard(path)

    def _children(self, path: str) -> list[str]:
        prefix = pathutil.dir_key_prefix(path)
        kids = [d for d in self.dirs if d != path and d.startswith(prefix)
                and "/" not in d[len(prefix):]]
        kids += [f for f in self.files if f.startswith(prefix)
                 and "/" not in f[len(prefix):]]
        return kids

    def write(self, path: str, offset: int, data: bytes) -> None:
        path = pathutil.normalize(path)
        self._parent_dir(path)
        if path in self.dirs:
            raise IsADirectory(path)
        if path not in self.files:
            raise NoEntry(path)
        cur = self.files[path]
        if len(cur) < offset:
            cur = cur.ljust(offset, b"\x00")
        self.files[path] = cur[:offset] + data + cur[offset + len(data):]

    def rename(self, old: str, new: str) -> None:
        old = pathutil.normalize(old)
        new = pathutil.normalize(new)
        if old == new:
            return
        if old in self.dirs:
            if pathutil.is_ancestor(old, new):
                raise InvalidArgument(new, "into itself")
            self._parent_dir(new)
            if self._exists(new):
                raise Exists(new)
            oldp = pathutil.dir_key_prefix(old)
            newp = pathutil.dir_key_prefix(new)
            self.dirs = {newp + d[len(oldp):] if d.startswith(oldp) else d
                         for d in self.dirs if d != old} | {new}
            self.files = {
                (newp + f[len(oldp):] if f.startswith(oldp) else f): v
                for f, v in self.files.items()
            }
        elif old in self.files:
            self._parent_dir(old)
            self._parent_dir(new)
            if new in self.dirs:
                raise Exists(new)
            data = self.files.pop(old)
            self.files[new] = data  # silently replaces an existing file
        else:
            self._parent_dir(old)
            raise NoEntry(old)

    def snapshot(self) -> tuple:
        return (frozenset(self.dirs),
                tuple(sorted((f, v) for f, v in self.files.items())))


def snapshot_real(client, model: ModelFS) -> tuple:
    """Walk the model's final tree through the real client."""
    dirs = set()
    files = []
    stack = ["/"]
    while stack:
        d = stack.pop()
        dirs.add(d)
        for e in client.readdir(d):
            child = pathutil.join(d, e.name)
            if e.is_dir:
                stack.append(child)
            else:
                size = client.stat_file(child).st_size
                files.append((child, client.read(child, 0, size) if size else b""))
    return frozenset(dirs), tuple(sorted(files))


SYSTEMS = {
    # LocoFS variants run with strict_collisions: the differential oracle
    # is precisely what exposed the split-keyspace name-collision gap
    "locofs-c": lambda: LocoFS(ClusterConfig(num_metadata_servers=3,
                                             strict_collisions=True)),
    "locofs-nc": lambda: LocoFS(ClusterConfig(num_metadata_servers=2,
                                              cache=CacheConfig(enabled=False),
                                              strict_collisions=True)),
    "multidms": lambda: MultiDMSLocoFS(num_directory_servers=2, num_metadata_servers=2,
                                       strict_collisions=True),
    "cephfs": lambda: CephFSSystem(num_metadata_servers=2),
    "gluster": lambda: GlusterSystem(num_metadata_servers=3),
    "lustre-d2": lambda: LustreSystem(num_metadata_servers=3, dne=2),
    "indexfs": lambda: IndexFSSystem(num_metadata_servers=2),
}

names = st.sampled_from(["a", "b", "c", "dd"])
paths = st.builds(lambda parts: "/" + "/".join(parts),
                  st.lists(names, min_size=1, max_size=3))
operations = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), paths),
        st.tuples(st.just("create"), paths),
        st.tuples(st.just("unlink"), paths),
        st.tuples(st.just("rmdir"), paths),
        st.tuples(st.just("rename"), paths, paths),
        st.tuples(st.just("write"), paths, st.integers(0, 100),
                  st.binary(min_size=1, max_size=50)),
    ),
    min_size=1,
    max_size=25,
)


def apply_to(target, op_tuple):
    op = op_tuple[0]
    if op == "mkdir":
        target.mkdir(op_tuple[1])
    elif op == "create":
        target.create(op_tuple[1])
    elif op == "unlink":
        target.unlink(op_tuple[1])
    elif op == "rmdir":
        target.rmdir(op_tuple[1])
    elif op == "rename":
        target.rename(op_tuple[1], op_tuple[2])
    elif op == "write":
        target.write(op_tuple[1], op_tuple[2], op_tuple[3])


# --- write-behind vs synchronous client (LocoFS-A/B differential) -----------
#
# The deferred clients promise: after a final flush, the namespace AND the
# attributes equal what the synchronous client produces from the same op
# sequence, and any read issued mid-sequence returns the same result
# (read-your-writes forces exactly the dependent flush).  Error *timing*
# legitimately differs — a deferred unlink of a missing file reports
# NoEntry at flush, the sync client at call — so mutator errors are
# swallowed on both sides and equivalence is asserted on states and on
# successful read results.

DEFERRED_SYSTEMS = {
    "locofs-b": lambda: LocoFS(ClusterConfig(
        num_metadata_servers=3, batch=BatchConfig(enabled=True))),
    "locofs-a": lambda: LocoFS(ClusterConfig(
        num_metadata_servers=3, batch=BatchConfig(enabled=True, all_ops=True),
        lookup_cache=LookupCacheConfig(enabled=True))),
    "locofs-a-1fms": lambda: LocoFS(ClusterConfig(
        num_metadata_servers=1, batch=BatchConfig(enabled=True, all_ops=True),
        lookup_cache=LookupCacheConfig(enabled=True))),
}

_READ_OPS = ("stat", "access", "readdir")

mixed_operations = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), paths),
        st.tuples(st.just("create"), paths),
        st.tuples(st.just("unlink"), paths),
        st.tuples(st.just("rmdir"), paths),
        st.tuples(st.just("rename"), paths, paths),
        st.tuples(st.just("chmod"), paths, st.sampled_from((0o600, 0o640, 0o755))),
        st.tuples(st.just("chown"), paths, st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("write"), paths, st.integers(0, 60),
                  st.binary(min_size=1, max_size=30)),
        st.tuples(st.just("stat"), paths),
        st.tuples(st.just("access"), paths),
        st.tuples(st.just("readdir"), paths),
    ),
    min_size=1,
    max_size=30,
)


def _apply_mixed(client, op_tuple):
    op = op_tuple[0]
    if op == "stat":
        s = client.stat(op_tuple[1])
        return ("stat", s.st_mode, s.st_uid, s.st_gid, s.st_size)
    if op == "access":
        return ("access", client.access(op_tuple[1], 4))
    if op == "readdir":
        return ("readdir", tuple(sorted(e.name for e in client.readdir(op_tuple[1]))))
    getattr(client, op)(*op_tuple[1:])
    return ("ok",)


def snapshot_attrs(client) -> tuple:
    """Full namespace walk including mode/uid/gid (+ size for files)."""
    dirs = []
    files = []
    stack = ["/"]
    while stack:
        d = stack.pop()
        sd = client.stat_dir(d)
        dirs.append((d, sd.st_mode, sd.st_uid, sd.st_gid))
        for e in client.readdir(d):
            child = pathutil.join(d, e.name)
            if e.is_dir:
                stack.append(child)
            else:
                s = client.stat_file(child)
                files.append((child, s.st_mode, s.st_uid, s.st_gid, s.st_size))
    return frozenset(dirs), tuple(sorted(files))


@pytest.mark.parametrize("deferred_name", sorted(DEFERRED_SYSTEMS))
@given(ops=mixed_operations)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_writebehind_differential(deferred_name, ops):
    sync_system = LocoFS(ClusterConfig(num_metadata_servers=3))
    deferred_system = DEFERRED_SYSTEMS[deferred_name]()
    sync_client = sync_system.client()
    deferred_client = deferred_system.client()
    for op_tuple in ops:
        try:
            want = _apply_mixed(sync_client, op_tuple)
            werr = None
        except FSError as e:
            want, werr = None, type(e)
        try:
            got = _apply_mixed(deferred_client, op_tuple)
            gerr = None
        except FSError:
            got, gerr = None, FSError
        retries = 0
        while gerr is not None and werr is None and retries < 10:
            # a deferred mutator's error surfaced through the flush this op
            # forced (reads *and* writes take the read-your-writes barrier);
            # the report is one-shot, so the aborted op must now be retried
            # against the drained queue — each retry may surface one more
            # queued error, hence the loop
            try:
                got = _apply_mixed(deferred_client, op_tuple)
                gerr = None
            except FSError:
                got, gerr = None, FSError
            retries += 1
        if op_tuple[0] in _READ_OPS and werr is None and got is not None:
            assert got == want, (op_tuple, want, got)
    for _ in range(10):
        try:
            deferred_client.flush()
            break
        except FSError:
            continue
    assert deferred_client.pending_ops == 0
    assert snapshot_attrs(deferred_client) == snapshot_attrs(sync_client)
    assert snapshot_real(deferred_client, None) == snapshot_real(sync_client, None)


@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
@given(ops=operations)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_differential_vs_oracle(system_name, ops):
    system = SYSTEMS[system_name]()
    client = system.client()
    model = ModelFS()
    for op_tuple in ops:
        try:
            apply_to(model, op_tuple)
            expected: type[BaseException] | None = None
        except FSError as e:
            expected = type(e)
        try:
            apply_to(client, op_tuple)
            got: type[BaseException] | None = None
        except FSError as e:
            got = type(e)
        # outcome classes must agree (allow sibling classes for path-shape
        # errors where the walk order legitimately differs)
        compatible = {
            frozenset({NoEntry, NotADirectory}),
            frozenset({Exists, IsADirectory}),
            frozenset({NoEntry, IsADirectory}),
            # rename(d, d/sub/...): EINVAL (into itself) vs ENOENT (missing
            # destination parent) — POSIX leaves the check order unspecified
            frozenset({InvalidArgument, NoEntry}),
        }
        if got is not expected:
            pair = frozenset(x for x in (got, expected) if x is not None)
            assert pair in compatible, (op_tuple, expected, got)
    assert snapshot_real(client, model) == model.snapshot()
    close = getattr(system, "close", None)
    if close:
        close()
