"""Unit tests for the common utilities: paths, uuids, stats, errors, config."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import pathutil
from repro.common.config import CacheConfig, ClusterConfig
from repro.common.errors import InvalidArgument
from repro.common.stats import Counters, LatencyRecorder, iops
from repro.common.types import (
    Credentials,
    S_IFDIR,
    S_IFREG,
    is_dir_mode,
    is_file_mode,
)
from repro.common.uuidgen import (
    ROOT_UUID,
    UuidAllocator,
    make_uuid,
    uuid_fid,
    uuid_sid,
)


class TestPathUtil:
    def test_normalize_basic(self):
        assert pathutil.normalize("/a/b") == "/a/b"
        assert pathutil.normalize("/a/b/") == "/a/b"
        assert pathutil.normalize("//a///b") == "/a/b"
        assert pathutil.normalize("/") == "/"

    @pytest.mark.parametrize("bad", ["", "relative", "a/b", "/a/./b", "/a/../b", "/a\x00b"])
    def test_normalize_rejects(self, bad):
        with pytest.raises(InvalidArgument):
            pathutil.normalize(bad)

    def test_name_too_long_rejected(self):
        with pytest.raises(InvalidArgument):
            pathutil.normalize("/" + "x" * 300)

    def test_split(self):
        assert pathutil.split("/a/b/c") == ("/a/b", "c")
        assert pathutil.split("/a") == ("/", "a")
        assert pathutil.split("/") == ("/", "")

    def test_join(self):
        assert pathutil.join("/", "a") == "/a"
        assert pathutil.join("/a", "b") == "/a/b"
        assert pathutil.join("/a/", "b") == "/a/b"
        assert pathutil.join("/a", "") == "/a"

    def test_components_and_depth(self):
        assert pathutil.components("/a/b/c") == ["a", "b", "c"]
        assert pathutil.components("/") == []
        assert pathutil.depth("/") == 0
        assert pathutil.depth("/a/b") == 2

    def test_ancestors(self):
        assert pathutil.ancestors("/a/b/c") == ["/", "/a", "/a/b"]
        assert pathutil.ancestors("/a") == ["/"]
        assert pathutil.ancestors("/") == []

    def test_is_ancestor(self):
        assert pathutil.is_ancestor("/a", "/a/b")
        assert pathutil.is_ancestor("/", "/a")
        assert not pathutil.is_ancestor("/a", "/a")
        assert not pathutil.is_ancestor("/a", "/ab")  # no false prefix match
        assert not pathutil.is_ancestor("/a/b", "/a")

    def test_dir_key_prefix(self):
        assert pathutil.dir_key_prefix("/") == "/"
        assert pathutil.dir_key_prefix("/a") == "/a/"

    @given(st.lists(st.text(alphabet="abcXYZ09_-", min_size=1, max_size=8), min_size=1, max_size=6))
    def test_split_join_roundtrip(self, parts):
        path = "/" + "/".join(parts)
        parent, name = pathutil.split(path)
        assert pathutil.join(parent, name) == pathutil.normalize(path)


class TestUuid:
    def test_compose_decompose(self):
        u = make_uuid(5, 1234)
        assert uuid_sid(u) == 5
        assert uuid_fid(u) == 1234

    def test_bounds(self):
        with pytest.raises(ValueError):
            make_uuid(-1, 0)
        with pytest.raises(ValueError):
            make_uuid(1 << 16, 0)
        with pytest.raises(ValueError):
            make_uuid(0, 1 << 48)

    def test_allocator_monotone_and_distinct(self):
        a = UuidAllocator(sid=3)
        got = [a.allocate() for _ in range(100)]
        assert len(set(got)) == 100
        assert all(uuid_sid(u) == 3 for u in got)
        assert got == sorted(got)

    def test_allocator_never_yields_root(self):
        a = UuidAllocator(sid=0)
        assert a.allocate() != ROOT_UUID

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 48) - 1))
    def test_roundtrip_property(self, sid, fid):
        u = make_uuid(sid, fid)
        assert uuid_sid(u) == sid and uuid_fid(u) == fid


class TestStats:
    def test_latency_summary(self):
        rec = LatencyRecorder()
        for v in [1, 2, 3, 4, 100]:
            rec.record("op", v)
        s = rec.summary("op")
        assert s.count == 5
        assert s.mean == 22
        assert s.minimum == 1 and s.maximum == 100
        assert s.p50 == 3

    def test_empty_summary_is_nan(self):
        s = LatencyRecorder().summary("none")
        assert s.count == 0 and math.isnan(s.mean)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record("x", 1)
        b.record("x", 3)
        a.merge(b)
        assert a.summary("x").count == 2

    def test_counters(self):
        c = Counters()
        c.inc("rpc")
        c.inc("rpc", 4)
        assert c.get("rpc") == 5
        assert c.get("absent") == 0

    def test_iops(self):
        assert iops(1000, 1_000_000) == 1000.0
        assert iops(10, 0) == 0.0


class TestTypesAndConfig:
    def test_mode_helpers(self):
        assert is_dir_mode(S_IFDIR | 0o755)
        assert not is_dir_mode(S_IFREG | 0o644)
        assert is_file_mode(S_IFREG | 0o644)

    def test_credentials_root(self):
        assert Credentials(0, 0).is_root
        assert not Credentials(1000, 1000).is_root

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_metadata_servers=0)
        with pytest.raises(ValueError):
            ClusterConfig(block_size=16)
        cfg = ClusterConfig(num_metadata_servers=4)
        assert cfg.cache.enabled

    def test_cache_config_defaults_match_paper(self):
        # paper §3.2.2: 30 s lease
        assert CacheConfig().lease_seconds == 30.0
