"""Direct unit tests for the baseline tree server and inode codec."""

import pytest

from repro.baselines.codec import (
    MAX_INDEX_BYTES,
    decode_inode,
    encode_inode,
    index_bytes_for,
    is_dir_inode,
)
from repro.baselines.treeserver import TreePartitionServer
from repro.common.errors import Exists, NoEntry, PermissionDenied
from repro.common.types import Credentials, FileType, ROOT_CRED


class TestCodec:
    def _file(self, size=0):
        return {"kind": int(FileType.FILE), "mode": 0o100644, "uid": 1, "gid": 2,
                "uuid": 99, "ctime": 1.0, "mtime": 2.0, "atime": 3.0,
                "size": size, "bsize": 4096}

    def test_roundtrip(self):
        fields = self._file(size=12345)
        got = decode_inode(encode_inode(fields))
        assert got == fields

    def test_dir_has_no_index_region(self):
        d = {"kind": int(FileType.DIRECTORY), "mode": 0o040755, "uid": 0, "gid": 0,
             "uuid": 1, "size": 0, "bsize": 4096}
        assert len(encode_inode(d)) == len(encode_inode({**d, "size": 1 << 30}))
        assert is_dir_inode(d)

    def test_index_grows_with_size_then_caps(self):
        assert index_bytes_for(0, 4096) == 0
        assert index_bytes_for(4096, 4096) == 8
        assert index_bytes_for(10 * 4096, 4096) == 80
        assert index_bytes_for(1 << 30, 4096) == MAX_INDEX_BYTES

    def test_value_size_reflects_file_size(self):
        small = encode_inode(self._file(size=0))
        big = encode_inode(self._file(size=1 << 20))
        assert len(big) - len(small) == index_bytes_for(1 << 20, 4096)


class TestTreePartitionServer:
    @pytest.fixture
    def server(self):
        s = TreePartitionServer(sid=1, has_root=True)
        yield s
        s.close()

    def test_root_installed(self, server):
        assert server.op_exists("/")
        assert server.op_lookup("/")["kind"] == int(FileType.DIRECTORY)

    def test_mkdir_local_and_lookup(self, server):
        uuid = server.op_mkdir_local("/d", 0o700, ROOT_CRED, 5.0)
        info = server.op_lookup("/d")
        assert info["uuid"] == uuid
        assert info["mode"] & 0o7777 == 0o700
        assert server.op_count_children("/") == 1

    def test_duplicate_mkdir_rejected(self, server):
        server.op_mkdir_local("/d", 0o755, ROOT_CRED, 0.0)
        with pytest.raises(Exists):
            server.op_mkdir_local("/d", 0o755, ROOT_CRED, 0.0)

    def test_create_and_remove_file(self, server):
        server.op_mkdir_local("/d", 0o755, ROOT_CRED, 0.0)
        server.op_create_local("/d/f", 0o644, ROOT_CRED, 0.0, 4096)
        assert server.op_count_children("/d") == 1
        removed = server.op_remove_file("/d/f", ROOT_CRED, unlink_local_dirent=True)
        assert removed["size"] == 0
        assert server.op_count_children("/d") == 0
        with pytest.raises(NoEntry):
            server.op_getattr("/d/f")

    def test_remove_checks_owner(self, server):
        server.op_create_local("/f", 0o644, Credentials(5, 5), 0.0, 4096)
        with pytest.raises(PermissionDenied):
            server.op_remove_file("/f", Credentials(6, 6), True)

    def test_split_link_unlink(self, server):
        uuid = server.op_put_dir_inode("/remote", 0o755, ROOT_CRED, 0.0)
        server.op_link("/", "remote", int(FileType.DIRECTORY), uuid)
        assert server.op_count_children("/") == 1
        assert server.op_unlink_dirent("/", "remote") is True
        assert server.op_unlink_dirent("/", "remote") is False

    def test_setattr_rewrites_whole_value(self, server):
        server.op_create_local("/f", 0o644, ROOT_CRED, 0.0, 4096)
        before = server.meter.count("serialize")
        server.op_setattr("/f", ROOT_CRED, 1.0, mode=0o600)
        # whole-inode designs reserialize on every attribute change
        assert server.meter.count("serialize") > before
        assert server.op_getattr("/f")["mode"] & 0o7777 == 0o600

    def test_write_meta_grows_value(self, server):
        server.op_create_local("/f", 0o644, ROOT_CRED, 0.0, 4096)
        small = len(server.store.get(b"I:/f"))
        server.op_write_meta("/f", 100 * 4096, 1.0)
        assert len(server.store.get(b"I:/f")) > small

    def test_export_import_subtree(self, server):
        server.op_mkdir_local("/t", 0o755, ROOT_CRED, 0.0)
        server.op_mkdir_local("/t/a", 0o755, ROOT_CRED, 0.0)
        server.op_create_local("/t/a/f", 0o644, ROOT_CRED, 0.0, 4096)
        records = server.op_export_subtree("/t")
        assert not server.op_exists("/t")
        assert not server.op_exists("/t/a/f")
        renamed = [(k, "/renamed" + p[len("/t"):], raw) for k, p, raw in records]
        server.op_import_records(renamed)
        assert server.op_exists("/renamed/a/f")
        assert server.op_lookup("/renamed/a")["kind"] == int(FileType.DIRECTORY)

    def test_export_excludes_siblings(self, server):
        server.op_mkdir_local("/t", 0o755, ROOT_CRED, 0.0)
        server.op_mkdir_local("/tt", 0o755, ROOT_CRED, 0.0)  # prefix sibling
        records = server.op_export_subtree("/t")
        exported_paths = {p for _, p, _ in records}
        assert "/tt" not in exported_paths
        assert server.op_exists("/tt")

    def test_overheads_charged(self):
        s = TreePartitionServer(sid=1, overhead_read_us=11.0, overhead_write_us=23.0,
                                has_root=True)
        before = s.meter.total_us
        s.op_exists("/")
        # meter has no policy attached here; counts still register
        assert s.meter.count("software_overhead") == 1
        s.op_mkdir_local("/d", 0o755, ROOT_CRED, 0.0)
        assert s.meter.count("software_overhead") == 2
        s.close()

    def test_lsm_backend(self, tmp_path):
        s = TreePartitionServer(sid=1, store_kind="lsm", has_root=True)
        s.op_mkdir_local("/d", 0o755, ROOT_CRED, 0.0)
        assert s.op_exists("/d")
        records = s.op_export_subtree("/d")
        assert len(records) == 2  # inode + dirent list
        s.close()
