"""Fault injection & crash recovery (repro.sim.faults).

Covers: ServerDown timeouts against crashed servers, retry/backoff
determinism, WAL replay-before-serve on restart, torn-tail recovery,
exactly-once retried batch flushes, lease masking of a DMS outage, the
deferred-error aggregation fix, and the availability harness's
zero-lost-acked differential check.
"""

import pytest

from repro.common.config import BatchConfig, ClusterConfig
from repro.common.errors import Exists, ServerDown
from repro.common.types import ROOT_CRED
from repro.core.fms import FileMetadataServer
from repro.core.fs import LocoFS
from repro.sim.costmodel import CostModel
from repro.sim.faults import F_DELAY, F_DROP, F_OK, FaultSchedule, FaultState, RetryPolicy

#: recovery short enough that the default retry budget outlasts it
FAST_RECOVERY = CostModel(restart_fixed_us=500.0, wal_replay_bpus=4000.0)


def _locofs(tmp_path, engine_kind="direct", cost=None, batch=False, cache=True,
            num_servers=1, subdir="fs"):
    from repro.common.config import CacheConfig

    cfg = ClusterConfig(
        num_metadata_servers=num_servers,
        batch=BatchConfig(enabled=batch),
        cache=CacheConfig(enabled=cache),
    )
    return LocoFS(cfg, cost=cost or FAST_RECOVERY, engine_kind=engine_kind,
                  data_dir=str(tmp_path / subdir))


# -- FaultSchedule / FaultState units ----------------------------------------------


class TestFaultSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(drop_prob=0.6, delay_prob=0.6)

    def test_builders_and_shift(self):
        s = FaultSchedule(seed=3).crash_restart("fms0", 100.0, 50.0, torn_tail_bytes=8)
        assert s.events == [(100.0, 0, "fms0", 8), (150.0, 1, "fms0", 0)]
        assert s.servers() == {"fms0"}
        assert not s.empty
        shifted = s.shifted(1000.0)
        assert shifted.events[0][0] == 1100.0
        assert s.events[0][0] == 100.0  # original untouched
        assert FaultSchedule().empty

    def test_empty_schedule_draws_no_randomness(self):
        state = FaultState(FaultSchedule(seed=42), engine=None)
        before = state.rng.getstate()
        for _ in range(10):
            assert state.wire_fate() == (F_OK, 0.0)
        assert state.rng.getstate() == before

    def test_wire_fates_deterministic(self):
        a = FaultState(FaultSchedule(seed=7, drop_prob=0.3, delay_prob=0.3), None)
        b = FaultState(FaultSchedule(seed=7, drop_prob=0.3, delay_prob=0.3), None)
        fates = [a.wire_fate() for _ in range(200)]
        assert fates == [b.wire_fate() for _ in range(200)]
        kinds = {f for f, _ in fates}
        assert kinds == {F_OK, F_DROP, F_DELAY}

    def test_backoff_caps_and_grows(self):
        import random

        policy = RetryPolicy(base_us=100.0, cap_us=350.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff_us(0, rng) == 100.0
        assert policy.backoff_us(1, rng) == 200.0
        assert policy.backoff_us(2, rng) == 350.0  # capped
        assert policy.backoff_us(5, rng) == 350.0


class TestShiftedSemantics:
    """``FaultSchedule.shifted`` contract (pinned by its docstring):
    crash/restart event *times* shift, wire fates do *not* — fates are
    drawn from one seeded RNG stream in attempt order, so the k-th RPC
    attempt meets the same fate in the original and the shifted copy.
    The availability harness depends on this: it authors a schedule
    relative to the measured wave, shifts it to the wave's start, and
    compares against an unshifted baseline — time-keyed fates would make
    the comparison measure the shift, not the faults."""

    def test_event_times_shift_wire_fates_do_not(self):
        base = FaultSchedule(seed=11, drop_prob=0.25, delay_prob=0.25)
        base.crash_restart("fms0", 100.0, 50.0, torn_tail_bytes=16)
        shifted = base.shifted(250_000.0)
        assert shifted.events == [(250_100.0, 0, "fms0", 16),
                                  (250_150.0, 1, "fms0", 0)]
        a = FaultState(base, engine=None)
        b = FaultState(shifted, engine=None)
        fates = [a.wire_fate() for _ in range(300)]
        assert fates == [b.wire_fate() for _ in range(300)]
        # the stream really exercised every fate (not vacuously equal)
        assert {f for f, _ in fates} == {F_OK, F_DROP, F_DELAY}

    def test_shift_composes_and_preserves_knobs(self):
        base = FaultSchedule(seed=3, drop_prob=0.1, delay_prob=0.05,
                             delay_us=750.0)
        base.crash("dms", 10.0)
        twice = base.shifted(100.0).shifted(200.0)
        assert twice.events == [(310.0, 0, "dms", 0)]
        assert (twice.seed, twice.drop_prob, twice.delay_prob,
                twice.delay_us) == (3, 0.1, 0.05, 750.0)
        assert base.events == [(10.0, 0, "dms", 0)]  # original untouched

    def test_shifted_empty_schedule_stays_empty(self):
        assert FaultSchedule().shifted(5_000.0).empty


# -- engine integration: down servers, retries, determinism ------------------------


class TestServerDown:
    def test_rpc_to_down_server_times_out(self, tmp_path):
        fs = _locofs(tmp_path)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")
        t = fs.engine.now
        fs.engine.attach_faults(FaultSchedule().crash("fms0", t + 1.0))
        t0 = fs.engine.now
        with pytest.raises(ServerDown):
            client.create("/d/b")
        # the clock advanced by at least the per-attempt timeouts
        policy = fs.engine.retry
        assert fs.engine.now - t0 >= (policy.max_retries + 1) * FAST_RECOVERY.timeout_us
        fs.close()

    def test_unknown_server_rejected(self, tmp_path):
        fs = _locofs(tmp_path)
        with pytest.raises(ValueError):
            fs.engine.attach_faults(FaultSchedule().crash("nope", 1.0))
        fs.close()

    def test_retry_timing_deterministic(self, tmp_path):
        def run(subdir):
            fs = _locofs(tmp_path, subdir=subdir)
            client = fs.client()
            client.mkdir("/d")
            t = fs.engine.now
            fs.engine.attach_faults(
                FaultSchedule(seed=5).crash_restart("fms0", t + 1.0, 2_500.0))
            for n in range(4):
                client.create(f"/d/f{n}")
            now = fs.engine.now
            fs.close()
            return now

        assert run("a") == run("b")

    def test_crash_recover_resumes_service(self, tmp_path):
        fs = _locofs(tmp_path)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("fms0", t + 1.0, 1_000.0))
        # retries outlast the outage + recovery: the op succeeds, late
        client.create("/d/b")
        assert client.stat_file("/d/b").st_mode
        node = fs.cluster["fms0"]
        assert node.crashes == 1
        assert node.recovered_us > 0.0
        fs.close()


class TestWalReplayOnRestart:
    def test_restart_replays_wal_before_serving(self, tmp_path):
        fs = _locofs(tmp_path)
        client = fs.client()
        client.mkdir("/d")
        for n in range(6):
            client.create(f"/d/f{n}")
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("fms0", t + 1.0, 1_000.0))
        # every pre-crash create survives the crash: WAL replay rebuilt them
        for n in range(6):
            assert client.stat_file(f"/d/f{n}").st_size == 0
        node = fs.cluster["fms0"]
        assert node.crashes == 1
        assert node.recovered_us > FAST_RECOVERY.restart_fixed_us  # replayed bytes
        fs.close()

    def test_recovery_latency_scales_with_replayed_bytes(self):
        cost = CostModel(restart_fixed_us=100.0, wal_replay_bpus=10.0)
        assert cost.recovery_us(0) == 100.0
        assert cost.recovery_us(500) == 150.0

    def test_dms_crash_restart_recovers_namespace(self, tmp_path):
        fs = _locofs(tmp_path)
        client = fs.client()
        client.mkdir("/d")
        client.mkdir("/d/sub")
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("dms", t + 1.0, 1_000.0))
        # force a DMS round trip (readdir is never lease-cached)
        names = {e.name for e in client.readdir("/d")}
        assert "sub" in names
        assert fs.cluster["dms"].recovered_us > 0.0
        fs.close()


class TestLeaseMasking:
    def test_cached_paths_mask_dms_outage(self, tmp_path):
        fs = _locofs(tmp_path, cache=True)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")  # caches /d under its lease
        t = fs.engine.now
        fs.engine.attach_faults(FaultSchedule().crash("dms", t + 1.0))
        # DMS is down and never restarts, but /d is leased: creates proceed
        client.create("/d/b")
        assert client.stat_file("/d/b")
        fs.close()

    def test_uncached_client_sees_dms_outage(self, tmp_path):
        fs = _locofs(tmp_path, cache=False)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")
        t = fs.engine.now
        fs.engine.attach_faults(FaultSchedule().crash("dms", t + 1.0))
        with pytest.raises(ServerDown):
            client.create("/d/b")
        fs.close()


# -- exactly-once batched creates ---------------------------------------------------


def _entries(names, now_s=1.0):
    return tuple((5, name, 0o644, ROOT_CRED, now_s, 4096) for name in names)


class TestIdempotentCreateBatch:
    def test_retried_batch_is_exactly_once(self, tmp_path):
        fms = FileMetadataServer(sid=1, wal_path=str(tmp_path / "f.wal"))
        entries = _entries(["a", "b", "c"])
        out1 = fms.op_create_batch(entries)
        out2 = fms.op_create_batch(entries)  # replayed flush (response lost)
        assert out2["exists"] == []
        assert out2["uuids"] == out1["uuids"]
        assert fms.counters.get("batch.deduped") == 3
        # no duplicate dirents
        buf = fms.store.get(b"E:" + (5).to_bytes(8, "big"))
        from repro.metadata import dirent

        assert sorted(e.name for e in dirent.iter_entries(buf)) == ["a", "b", "c"]

    def test_genuine_conflict_still_reported(self, tmp_path):
        fms = FileMetadataServer(sid=1, wal_path=str(tmp_path / "f.wal"))
        fms.op_create_batch(_entries(["a"], now_s=1.0))
        # a *different* create of the same name (later ctime): conflict
        out = fms.op_create_batch(_entries(["a"], now_s=2.0))
        assert out["exists"] == ["a"]
        assert out["uuids"] == [None]

    def test_coupled_mode_dedups_too(self, tmp_path):
        fms = FileMetadataServer(sid=1, decoupled=False,
                                 wal_path=str(tmp_path / "f.wal"))
        entries = _entries(["x", "y"])
        out1 = fms.op_create_batch(entries)
        out2 = fms.op_create_batch(entries)
        assert out2["exists"] == []
        assert out2["uuids"] == out1["uuids"]

    def test_torn_tail_repairs_partial_create(self, tmp_path):
        wal_path = str(tmp_path / "f.wal")
        fms = FileMetadataServer(sid=1, wal_path=wal_path)
        entries = _entries(["a", "b", "c", "d"])
        fms.op_create_batch(entries)
        # crash mid-group-commit: the WAL loses its tail (some of the
        # batch's records never hit the disk)
        fms.crash(torn_tail_bytes=40)
        replayed = fms.restart()
        assert replayed > 0
        # the retried flush must converge: every entry either deduped
        # (fully applied) or re-applied (torn remnant) — never "exists"
        out = fms.op_create_batch(entries)
        assert out["exists"] == []
        assert all(u is not None for u in out["uuids"])
        buf = fms.store.get(b"E:" + (5).to_bytes(8, "big"))
        from repro.metadata import dirent

        assert sorted(e.name for e in dirent.iter_entries(buf)) == ["a", "b", "c", "d"]


class TestBatchedClientRequeue:
    def test_flush_requeues_on_serverdown_and_drains_after_recovery(self, tmp_path):
        fs = _locofs(tmp_path, batch=True)
        client = fs.client()
        client.mkdir("/d")
        t = fs.engine.now
        # long outage: the first flush's retries are exhausted
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("fms0", t + 1.0, 60_000.0))
        for n in range(3):
            client.create(f"/d/f{n}")  # acked into the write-behind queue
        with pytest.raises(ServerDown):
            client.flush()
        assert client.flush_requeues == 1
        assert client.pending_ops == 3  # nothing was dropped
        # after recovery the re-queued flush lands exactly once
        deadline = fs.engine.now + 120_000.0
        while client.pending_ops:
            try:
                client.flush()
            except ServerDown:
                assert fs.engine.now < deadline, "flush never recovered"
        for n in range(3):
            assert client.stat_file(f"/d/f{n}")
        assert fs.fms[0].counters.get("batch.deduped") == 0
        fs.close()

    def test_deferred_errors_all_surface(self, tmp_path):
        fs = _locofs(tmp_path, batch=True)
        seeder = fs.client()
        seeder.mkdir("/d")
        seeder.create("/d/a")
        seeder.create("/d/b")
        seeder.flush()
        client = fs.client()
        client.create("/d/a")  # both will conflict at the flush boundary
        client.create("/d/b")
        with pytest.raises(Exists):
            client.flush()
        assert len(client.deferred_errors) == 1
        assert isinstance(client.deferred_errors[0], Exists)
        fs.close()


# -- availability harness ----------------------------------------------------------


class TestAvailabilityHarness:
    @pytest.mark.parametrize("system", ["locofs-c", "locofs-b"])
    def test_zero_lost_acked_across_fms_crash(self, system, tmp_path):
        from repro.harness import run_availability

        r = run_availability(system, num_servers=2, crash_server="fms0",
                             num_clients=2, items_per_client=8,
                             data_dir=str(tmp_path / system))
        assert r.crashes == 1
        assert r.lost_acked == 0
        assert r.acked_ops + r.failed_ops == 16
        assert r.unavailability_us > 0.0
        assert len(r.timeline) == 40

    def test_lease_masking_is_visible_in_goodput(self, tmp_path):
        from repro.harness import run_availability

        cached = run_availability("locofs-c", num_servers=2, crash_server="dms",
                                  num_clients=2, items_per_client=8,
                                  data_dir=str(tmp_path / "c"))
        uncached = run_availability("locofs-nc", num_servers=2, crash_server="dms",
                                    num_clients=2, items_per_client=8,
                                    data_dir=str(tmp_path / "nc"))
        assert cached.lost_acked == 0 and uncached.lost_acked == 0
        # leases mask the outage: the cached variant keeps its baseline
        assert cached.goodput_iops == pytest.approx(cached.baseline_iops, rel=0.05)
        assert uncached.goodput_iops < 0.5 * uncached.baseline_iops


# -- observability ------------------------------------------------------------------


class TestFaultObservability:
    def test_instants_counters_and_analyze_summary(self, tmp_path):
        from repro.obs import MetricsRegistry, Tracer
        from repro.obs.analyze import attribution_report, fault_summary, format_attribution

        fs = _locofs(tmp_path)
        tracer, metrics = Tracer(), MetricsRegistry()
        fs.engine.attach_observability(tracer=tracer, metrics=metrics)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")
        t = fs.engine.now
        fs.engine.attach_faults(
            FaultSchedule().crash_restart("fms0", t + 1.0, 1_000.0))
        client.create("/d/b")
        names = {i.name for i in tracer.instants}
        assert {"server.crash", "server.recover", "client.retry"} <= names
        assert metrics.counter("client.retries").value >= 1
        assert metrics.counter("fms0.crashes").value == 1
        summary = fault_summary(tracer)
        assert summary["crashes"] == {"fms0": 1}
        assert summary["retries"] >= 1
        report = attribution_report(tracer)
        assert report["faults"] == summary
        assert "faults:" in format_attribution(report)
        fs.close()

    def test_unfaulted_report_has_no_fault_section(self, tmp_path):
        from repro.obs import Tracer
        from repro.obs.analyze import attribution_report

        fs = _locofs(tmp_path)
        tracer = Tracer()
        fs.engine.attach_observability(tracer=tracer)
        client = fs.client()
        client.mkdir("/d")
        client.create("/d/a")
        assert "faults" not in attribution_report(tracer)
        fs.close()
