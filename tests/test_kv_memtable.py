"""Unit tests for the skip-list memtable."""

from repro.kv.memtable import SkipListMemtable


def test_put_get_roundtrip():
    mt = SkipListMemtable()
    mt.put(b"a", b"1")
    mt.put(b"b", b"2")
    assert mt.get(b"a") == b"1"
    assert mt.get(b"b") == b"2"
    assert mt.get(b"c") is None


def test_overwrite_updates_value_not_count():
    mt = SkipListMemtable()
    mt.put(b"k", b"v1")
    mt.put(b"k", b"v2")
    assert mt.get(b"k") == b"v2"
    assert len(mt) == 1


def test_items_sorted_order():
    mt = SkipListMemtable()
    keys = [b"delta", b"alpha", b"echo", b"charlie", b"bravo"]
    for i, k in enumerate(keys):
        mt.put(k, str(i).encode())
    assert [k for k, _ in mt.items()] == sorted(keys)


def test_len_counts_distinct_keys():
    mt = SkipListMemtable()
    for i in range(100):
        mt.put(f"key{i:03d}".encode(), b"v")
    assert len(mt) == 100


def test_scan_half_open_interval():
    mt = SkipListMemtable()
    for c in b"abcdef":
        mt.put(bytes([c]), b"v")
    got = [k for k, _ in mt.scan(b"b", b"e")]
    assert got == [b"b", b"c", b"d"]


def test_scan_empty_range():
    mt = SkipListMemtable()
    mt.put(b"a", b"v")
    assert list(mt.scan(b"x", b"z")) == []


def test_remove_existing_and_missing():
    mt = SkipListMemtable()
    mt.put(b"a", b"v")
    assert mt.remove(b"a") is True
    assert mt.remove(b"a") is False
    assert mt.get(b"a") is None
    assert len(mt) == 0


def test_none_value_tombstone_support():
    mt = SkipListMemtable()
    mt.put(b"a", b"v")
    mt.put(b"a", None)
    # scan distinguishes tombstone (present, None) from absent
    assert list(mt.scan(b"a", b"b")) == [(b"a", None)]


def test_approx_bytes_grows_and_shrinks():
    mt = SkipListMemtable()
    before = mt.approx_bytes
    mt.put(b"key", b"x" * 100)
    grown = mt.approx_bytes
    assert grown > before
    mt.remove(b"key")
    assert mt.approx_bytes < grown


def test_large_population_sorted_iteration():
    mt = SkipListMemtable(seed=7)
    import random

    rng = random.Random(42)
    keys = [f"{rng.randrange(10**9):09d}".encode() for _ in range(2000)]
    for k in keys:
        mt.put(k, k)
    out = [k for k, _ in mt.items()]
    assert out == sorted(set(keys))
