"""Unit tests for the write-ahead log and SSTable file format."""

import pytest

from repro.kv.sstable import SSTable, SSTableBuilder
from repro.kv.wal import OP_DELETE, OP_PUT, WriteAheadLog, encode_record


class TestWAL:
    def test_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"a", b"1")
        wal.append_put(b"b", b"2")
        wal.append_delete(b"a")
        wal.flush()
        records = list(WriteAheadLog.replay(path))
        assert records == [(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2"), (OP_DELETE, b"a", b"")]
        wal.close()

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(str(tmp_path / "nope.log"))) == []

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"good", b"record")
        wal.flush()
        wal.close()
        with open(path, "ab") as fh:
            fh.write(encode_record(OP_PUT, b"torn", b"record")[:-3])
        records = list(WriteAheadLog.replay(path))
        assert records == [(OP_PUT, b"good", b"record")]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"one", b"1")
        wal.append_put(b"two", b"2")
        wal.flush()
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # corrupt last record's payload
        open(path, "wb").write(bytes(data))
        records = list(WriteAheadLog.replay(path))
        assert records == [(OP_PUT, b"one", b"1")]

    def test_torn_mid_group_commit_recovers_prefix(self, tmp_path):
        # a group commit is one write() but not atomic on disk: a crash can
        # tear it anywhere — replay must keep the intact record prefix
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.begin_group()
        for i in range(6):
            wal.append_put(f"k{i}".encode(), f"v{i}".encode())
        wal.end_group()
        wal.flush()
        wal.close()
        one = len(encode_record(OP_PUT, b"k0", b"v0"))
        with open(path, "rb") as fh:
            data = fh.read()
        assert len(data) == 6 * one
        # cut inside the 4th record
        with open(path, "wb") as fh:
            fh.write(data[: 3 * one + one // 2])
        records = list(WriteAheadLog.replay(path))
        assert records == [(OP_PUT, f"k{i}".encode(), f"v{i}".encode())
                           for i in range(3)]

    def test_torn_append_many_tail_recovers_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_many([(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2"),
                         (OP_DELETE, b"a", b""), (OP_PUT, b"c", b"3")])
        wal.flush()
        wal.close()
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-5])  # tear inside the last record
        records = list(WriteAheadLog.replay(path))
        assert records == [(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2"),
                           (OP_DELETE, b"a", b"")]

    def test_torn_tail_then_new_appends_replay_cleanly(self, tmp_path):
        # recovery truncates nothing on disk; replay simply stops at the
        # tear — verify a store reopened over a torn log recovers the
        # prefix and keeps working (mirrors tests/test_recovery.py at the
        # store level)
        from repro.kv.hashdb import HashStore

        path = str(tmp_path / "wal.log")
        store = HashStore(wal_path=path)
        with store.group():
            store.multi_put([(b"x", b"1"), (b"y", b"2"), (b"z", b"3")])
        store._wal.flush()
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-1])  # lose the last byte of the group
        recovered = HashStore(wal_path=path)
        assert recovered.get(b"x") == b"1"
        assert recovered.get(b"y") == b"2"
        assert recovered.get(b"z") is None  # torn record dropped

    def test_truncate_inside_group_drops_buffered_records(self, tmp_path):
        # regression: truncate() used to leave records buffered by an open
        # group in place, so the outermost end_group resurrected state the
        # memtable flush had just made durable into the fresh log
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.begin_group()
        wal.append_put(b"flushed", b"1")
        wal.truncate()  # memtable overflow flush landing mid-group
        wal.append_put(b"live", b"2")
        wal.end_group()
        wal.flush()
        assert list(WriteAheadLog.replay(path)) == [(OP_PUT, b"live", b"2")]
        wal.close()

    def test_truncate_inside_nested_group_keeps_depth(self, tmp_path):
        # the group must stay open at the same nesting depth across a
        # truncate: only the outermost end_group may write
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.begin_group()
        wal.begin_group()
        wal.append_put(b"old", b"1")
        wal.truncate()
        wal.append_put(b"inner", b"2")
        wal.end_group()  # inner: must not flush yet
        wal.flush()
        assert list(WriteAheadLog.replay(path)) == []
        wal.append_put(b"outer", b"3")
        wal.end_group()
        wal.flush()
        assert list(WriteAheadLog.replay(path)) == [
            (OP_PUT, b"inner", b"2"), (OP_PUT, b"outer", b"3")]
        assert wal.commits == 1  # both survivors in one commit
        wal.close()

    def test_truncate_resets_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"a", b"1")
        wal.truncate()
        wal.append_put(b"b", b"2")
        wal.flush()
        assert list(WriteAheadLog.replay(path)) == [(OP_PUT, b"b", b"2")]
        wal.close()

    def test_binary_safe_keys_and_values(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        key = bytes(range(256))
        value = b"\x00\xff" * 100
        wal.append_put(key, value)
        wal.flush()
        assert list(WriteAheadLog.replay(path)) == [(OP_PUT, key, value)]
        wal.close()


class TestSSTable:
    def _build(self, tmp_path, entries, **kw):
        b = SSTableBuilder(str(tmp_path / "t.sst"), **kw)
        for k, v in entries:
            b.add(k, v)
        return b.finish()

    def test_point_lookup(self, tmp_path):
        entries = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(100)]
        t = self._build(tmp_path, entries)
        for k, v in entries:
            found, got = t.get(k)
            assert found and got == v

    def test_absent_key(self, tmp_path):
        t = self._build(tmp_path, [(b"a", b"1"), (b"c", b"3")])
        assert t.get(b"b") == (False, None)
        assert t.get(b"zzz") == (False, None)
        assert t.get(b"0") == (False, None)

    def test_tombstone_found_with_none_value(self, tmp_path):
        t = self._build(tmp_path, [(b"a", b"1"), (b"dead", None)])
        assert t.get(b"dead") == (True, None)

    def test_items_in_order(self, tmp_path):
        entries = [(f"{i:05d}".encode(), b"v") for i in range(50)]
        t = self._build(tmp_path, entries)
        assert [k for k, _ in t.items()] == [k for k, _ in entries]

    def test_scan_range(self, tmp_path):
        entries = [(f"{i:03d}".encode(), str(i).encode()) for i in range(100)]
        t = self._build(tmp_path, entries)
        got = [k for k, _ in t.scan(b"010", b"015")]
        assert got == [b"010", b"011", b"012", b"013", b"014"]

    def test_out_of_order_add_rejected(self, tmp_path):
        b = SSTableBuilder(str(tmp_path / "bad.sst"))
        b.add(b"b", b"1")
        with pytest.raises(ValueError):
            b.add(b"a", b"2")
        with pytest.raises(ValueError):
            b.add(b"b", b"dup")

    def test_empty_table_rejected(self, tmp_path):
        b = SSTableBuilder(str(tmp_path / "empty.sst"))
        with pytest.raises(ValueError):
            b.finish()

    def test_reopen_from_disk(self, tmp_path):
        path = str(tmp_path / "t.sst")
        b = SSTableBuilder(path, file_seq=42)
        b.add(b"alpha", b"1")
        b.add(b"beta", b"2")
        b.finish()
        t = SSTable(path)
        assert t.file_seq == 42
        assert t.get(b"alpha") == (True, b"1")
        assert t.min_key == b"alpha"
        assert t.max_key == b"beta"

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.sst")
        open(path, "wb").write(b"\x00" * 64)
        with pytest.raises(ValueError):
            SSTable(path)

    def test_sparse_index_boundaries(self, tmp_path):
        # exercise keys that land exactly on index interval boundaries
        entries = [(f"{i:04d}".encode(), b"v") for i in range(64)]
        t = self._build(tmp_path, entries, index_interval=16)
        for k, _ in entries:
            assert t.get(k)[0]
