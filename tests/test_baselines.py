"""Baselines: the shared semantics suite across all four systems, plus
system-specific structural behaviour."""

import pytest

from repro.baselines import (
    CephFSSystem,
    GlusterSystem,
    IndexFSSystem,
    LustreSystem,
    RawKVSystem,
)
from repro.common.types import Credentials

from fs_semantics import FSSemantics


def make_system(kind, n=3, **kw):
    if kind == "indexfs":
        return IndexFSSystem(num_metadata_servers=n, **kw)
    if kind == "cephfs":
        return CephFSSystem(num_metadata_servers=n, **kw)
    if kind == "lustre-d1":
        return LustreSystem(num_metadata_servers=n, dne=1, **kw)
    if kind == "lustre-d2":
        return LustreSystem(num_metadata_servers=n, dne=2, **kw)
    if kind == "gluster":
        return GlusterSystem(num_metadata_servers=n, **kw)
    raise ValueError(kind)


ALL_SYSTEMS = ["indexfs", "cephfs", "lustre-d1", "lustre-d2", "gluster"]


@pytest.fixture(params=ALL_SYSTEMS)
def fs_deployment(request):
    sys_ = make_system(request.param)
    yield sys_
    sys_.close()


@pytest.fixture
def fs_client(fs_deployment):
    return fs_deployment.client()


@pytest.fixture
def fs_factory(fs_deployment):
    def make(cred):
        return fs_deployment.client(cred=cred)

    return make


class TestBaselineSemantics(FSSemantics):
    """Run the shared contract over all five baseline configurations."""


class TestRawKV:
    def test_put_get_roundtrip(self):
        sys_ = RawKVSystem()
        c = sys_.client()
        c.put(b"k", b"v")
        assert c.get(b"k") == b"v"
        assert c.get(b"missing") is None

    def test_one_rpc_per_op(self):
        sys_ = RawKVSystem()
        c = sys_.client()
        c.put(b"k", b"v")
        c.get(b"k")
        assert sys_.cluster["kv0"].requests_served == 2

    def test_latency_is_one_rtt_plus_service(self):
        sys_ = RawKVSystem()
        c = sys_.client()
        t0 = sys_.engine.now
        c.get(b"k")
        assert sys_.engine.now - t0 < 1.2 * sys_.cost.rtt_us


class TestStructuralBehaviour:
    def test_gluster_mkdir_touches_every_brick(self):
        sys_ = GlusterSystem(num_metadata_servers=4)
        c = sys_.client()
        before = [sys_.cluster[n].requests_served for n in sys_.server_names]
        c.mkdir("/d")
        after = [sys_.cluster[n].requests_served for n in sys_.server_names]
        assert all(a > b for a, b in zip(after, before))
        sys_.close()

    def test_gluster_create_is_single_brick(self):
        sys_ = GlusterSystem(num_metadata_servers=4)
        c = sys_.client()
        c.mkdir("/d")
        before = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        c.create("/d/f")  # parent cached; dirs replicated so create is local
        after = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        assert after - before == 1
        sys_.close()

    def test_cephfs_subtree_locality(self):
        # deep operations inside one subtree hit exactly one MDS
        sys_ = CephFSSystem(num_metadata_servers=4)
        c = sys_.client()
        c.mkdir("/proj")
        c.mkdir("/proj/a")
        c.mkdir("/proj/a/b")
        home = sys_.placement.inode_server("/proj")
        assert sys_.placement.inode_server("/proj/a/b") == home
        sys_.close()

    def test_cephfs_stat_served_from_client_cache(self):
        sys_ = CephFSSystem(num_metadata_servers=2)
        c = sys_.client()
        c.mkdir("/d")
        c.create("/d/f")
        served = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        st = c.stat_file("/d/f")  # capabilities: attrs cached since create
        assert st.is_file
        assert sum(sys_.cluster[n].requests_served for n in sys_.server_names) == served
        sys_.close()

    def test_lustre_stat_contacts_mds(self):
        sys_ = LustreSystem(num_metadata_servers=2, dne=1)
        c = sys_.client()
        c.mkdir("/d")
        c.create("/d/f")
        served = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        c.stat_file("/d/f")
        # close-to-open consistency: glimpse lock + getattr, both at the MDS
        assert sum(sys_.cluster[n].requests_served for n in sys_.server_names) == served + 2
        sys_.close()

    def test_lustre_d2_readdir_contacts_every_mds(self):
        sys_ = LustreSystem(num_metadata_servers=4, dne=2)
        c = sys_.client()
        c.mkdir("/d")
        for i in range(12):
            c.create(f"/d/f{i}")
        before = [sys_.cluster[n].requests_served for n in sys_.server_names]
        entries = c.readdir("/d")
        after = [sys_.cluster[n].requests_served for n in sys_.server_names]
        assert len(entries) == 12
        assert all(a == b + 1 for a, b in zip(after, before))
        sys_.close()

    def test_lustre_d2_stripes_files_across_mds(self):
        sys_ = LustreSystem(num_metadata_servers=4, dne=2)
        c = sys_.client()
        c.mkdir("/d")
        for i in range(60):
            c.create(f"/d/f{i:02d}")
        counts = [s.num_inodes() for s in sys_.servers]
        assert sum(counts) == 62  # root + /d + 60 files
        assert sum(1 for n in counts if n > 0) >= 3
        sys_.close()

    def test_indexfs_children_live_in_parent_partition(self):
        sys_ = IndexFSSystem(num_metadata_servers=4)
        c = sys_.client()
        c.mkdir("/d")
        for i in range(10):
            c.create(f"/d/f{i}")
        home = sys_.placement.dirent_home("/d")
        home_server = sys_.servers[sys_.server_names.index(home)]
        # all ten file inodes are in /d's partition
        assert home_server.num_inodes() >= 10
        sys_.close()

    def test_indexfs_path_walk_contacts_servers_per_component(self):
        sys_ = IndexFSSystem(num_metadata_servers=4)
        c = sys_.client()
        c.mkdir("/a")
        c.mkdir("/a/b")
        c.mkdir("/a/b/c")
        fresh = sys_.client()  # cold cache
        before = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        fresh.create("/a/b/c/file")
        after = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        # cold create: lookups for /, /a, /a/b, /a/b/c plus the create itself
        assert after - before == 5
        sys_.close()

    def test_indexfs_warm_cache_create_is_one_rpc(self):
        sys_ = IndexFSSystem(num_metadata_servers=4)
        c = sys_.client()
        c.mkdir("/a")
        c.create("/a/f0")  # warms the walk
        before = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        c.create("/a/f1")
        after = sum(sys_.cluster[n].requests_served for n in sys_.server_names)
        assert after - before == 1
        sys_.close()

    def test_baseline_serialization_charged(self):
        # whole-inode values pay (de)serialization on the server meter
        sys_ = LustreSystem(num_metadata_servers=1, dne=1)
        c = sys_.client()
        c.mkdir("/d")
        c.create("/d/f")
        mds = sys_.cluster["mds0"]
        assert mds.meter.count("serialize") > 0
        sys_.close()

    def test_index_metadata_grows_with_file_size(self):
        from repro.baselines.codec import encode_inode

        small = encode_inode({"kind": 1, "mode": 0o100644, "uid": 0, "gid": 0,
                              "uuid": 1, "size": 0, "bsize": 4096})
        big = encode_inode({"kind": 1, "mode": 0o100644, "uid": 0, "gid": 0,
                            "uuid": 1, "size": 1 << 20, "bsize": 4096})
        assert len(big) > len(small)

    def test_multiuser_permissions_cross_system(self):
        for kind in ALL_SYSTEMS:
            sys_ = make_system(kind, n=2)
            root = sys_.client()
            root.mkdir("/home", mode=0o755)
            root.mkdir("/home/alice", mode=0o700)
            root.chown("/home/alice", 100, 100)
            alice = sys_.client(cred=Credentials(100, 100))
            alice.create("/home/alice/secret")
            assert alice.stat_file("/home/alice/secret").st_uid == 100
            sys_.close()
