"""Tests for the observability subsystem (repro.obs): tracer, metrics, export."""

import json
import math
import random

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import NoEntry
from repro.common.stats import _percentile
from repro.core.fs import LocoFS
from repro.kv import HashStore
from repro.obs import (
    Histogram,
    MetricsRegistry,
    TimeSeries,
    Tracer,
    get_default_registry,
    set_default_registry,
)
from repro.obs.export import chrome_trace_events, metrics_dump, write_chrome_trace
from repro.sim import (
    Cluster,
    CostModel,
    DirectEngine,
    EventEngine,
    Mark,
    Parallel,
    Rpc,
    SpanBegin,
    SpanEnd,
)


# ---------------------------------------------------------------------------
# toy cluster (mirrors test_sim_engine's EchoHandler)
# ---------------------------------------------------------------------------

class EchoHandler:
    def __init__(self):
        self.store = None

    def attach_meter(self, meter):
        self.store = HashStore(meter=meter)

    def op_echo(self, x):
        return x

    def op_put(self, k, v):
        self.store.put(k, v)

    def op_charge(self, us):
        self.store.meter.charge_us(us)
        return "charged"

    def op_fail(self):
        raise NoEntry("nope")


def make_cluster(n=2):
    cost = CostModel()
    cluster = Cluster(cost)
    for i in range(n):
        cluster.add(f"s{i}", EchoHandler())
    return cluster, cost


def g_op(rpcs):
    """A traced pseudo-op wrapping ``rpcs`` like fsbase's _g_traced does."""
    yield SpanBegin("client.op", "op", {"path": "/x"})
    try:
        for rpc in rpcs:
            yield rpc
    finally:
        yield SpanEnd()


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------

def test_span_nesting_direct_engine():
    cluster, cost = make_cluster()
    engine = DirectEngine(cluster, cost)
    tracer = Tracer()
    engine.attach_observability(tracer=tracer)
    engine.run(g_op([Rpc("s0", "put", (b"k", b"v"))]))

    ops = tracer.find("client.op")
    assert len(ops) == 1
    op = ops[0]
    assert op.end_us is not None and op.args == {"path": "/x"}
    rpcs = tracer.find("rpc.put")
    assert len(rpcs) == 1 and rpcs[0].parent is op
    serve = tracer.find("serve.put")
    assert len(serve) == 1 and serve[0].parent is rpcs[0]
    kv = tracer.find("kv.")
    assert kv and all(op.ancestor_of(s) for s in kv)
    # kv spans lie inside the serve window, laid end to end
    assert all(s.start_us >= serve[0].start_us - 1e-9 for s in kv)
    assert all(s.end_us <= serve[0].end_us + 1e-9 for s in kv)
    # the rpc span covers the serve span plus wire time on the client track
    assert rpcs[0].start_us <= serve[0].start_us
    assert rpcs[0].end_us >= serve[0].end_us
    assert rpcs[0].track != serve[0].track


def test_span_closed_on_error():
    cluster, cost = make_cluster()
    engine = DirectEngine(cluster, cost)
    tracer = Tracer()
    engine.attach_observability(tracer=tracer)
    with pytest.raises(NoEntry):
        engine.run(g_op([Rpc("s0", "fail", ())]))
    op = tracer.find("client.op")[0]
    assert op.end_us is not None  # the finally-yielded SpanEnd closed it


def test_parallel_children_share_parent():
    cluster, cost = make_cluster()
    engine = DirectEngine(cluster, cost)
    tracer = Tracer()
    engine.attach_observability(tracer=tracer)

    def g():
        yield SpanBegin("client.op", "op")
        yield Parallel([Rpc("s0", "charge", (100,)), Rpc("s1", "charge", (300,))])
        yield SpanEnd()

    engine.run(g())
    op = tracer.find("client.op")[0]
    branches = tracer.find("rpc.charge")
    assert len(branches) == 2
    assert all(b.parent is op for b in branches)
    assert {b.args["server"] for b in branches} == {"s0", "s1"}
    assert all(op.start_us <= b.start_us and b.end_us <= op.end_us
               for b in branches)


def test_event_engine_queue_delay_attributed():
    """Two clients hit one server back to back: the second's wait is a
    distinct 'queue' span on the server track, child of its rpc span."""
    cluster, cost = make_cluster(n=1)
    engine = EventEngine(cluster, cost)
    tracer = Tracer()
    metrics = MetricsRegistry()
    engine.attach_observability(tracer=tracer, metrics=metrics)
    for _ in range(2):
        engine.spawn(g_op([Rpc("s0", "charge", (500,))]))
    engine.sim.run()

    queues = tracer.find("queue", cat="queue")
    assert len(queues) == 1  # only the second arrival waited
    q = queues[0]
    assert q.track == "s0" and q.duration_us > 0
    assert q.parent is not None and q.parent.name == "rpc.charge"
    serve = [s for s in tracer.find("serve.charge") if s.parent is q.parent]
    assert len(serve) == 1 and serve[0].start_us == pytest.approx(q.end_us)
    # the wait also landed in the queue_wait histogram
    h = metrics.histograms["s0.queue_wait_us"]
    assert h.count == 2 and h.maximum == pytest.approx(q.duration_us)


def test_event_engine_distinct_client_tracks():
    cluster, cost = make_cluster(n=1)
    engine = EventEngine(cluster, cost)
    tracer = Tracer()
    engine.attach_observability(tracer=tracer)
    for _ in range(2):
        engine.spawn(g_op([Rpc("s0", "echo", (1,))]))
    engine.sim.run()
    tracks = {s.track for s in tracer.find("client.op")}
    assert len(tracks) == 2  # one trace track per spawned client process


def test_tracing_does_not_change_virtual_time():
    """Zero-cost requirement: attaching a tracer must not move the clock."""
    def run_once(attach):
        cluster, cost = make_cluster()
        engine = DirectEngine(cluster, cost)
        if attach:
            engine.attach_observability(tracer=Tracer(), metrics=MetricsRegistry())
        for i in range(5):
            engine.run(g_op([Rpc("s0", "put", (b"k%d" % i, b"v"))]))
        return engine.now

    assert run_once(False) == run_once(True)


def test_trace_is_deterministic():
    def trace_once():
        cluster, cost = make_cluster()
        engine = DirectEngine(cluster, cost)
        tracer = Tracer()
        engine.attach_observability(tracer=tracer)
        engine.run(g_op([Rpc("s0", "put", (b"k", b"v")), Rpc("s1", "echo", (7,))]))
        return chrome_trace_events(tracer)

    assert trace_once() == trace_once()


# ---------------------------------------------------------------------------
# full-system spans: LocoFS create shows client op -> rpc -> kv nesting
# ---------------------------------------------------------------------------

def test_locofs_create_span_tree():
    fs = LocoFS(ClusterConfig(num_metadata_servers=2))
    tracer = Tracer()
    metrics = MetricsRegistry()
    fs.attach_observability(tracer=tracer, metrics=metrics)
    c = fs.client()
    c.mkdir("/d")
    c.create("/d/f")

    creates = tracer.find("client.create")
    assert len(creates) == 1
    op = creates[0]
    rpcs = [s for s in tracer.find("rpc.") if s.parent is op]
    assert rpcs, "create should issue at least one RPC under the op span"
    kv = [s for s in tracer.find("kv.") if op.ancestor_of(s)]
    assert kv, "the create RPC should charge KV work"
    # acceptance: >= 3 nested levels (client op -> rpc -> kv)
    deepest = max(kv, key=lambda s: s.start_us)
    depth = 0
    node = deepest
    while node is not None:
        depth += 1
        node = node.parent
    assert depth >= 3
    # metrics namespacing came along for the ride
    assert metrics.counters["client.create"].value == 1
    assert any(n.startswith("fms") and n.endswith(".files.created")
               for n in metrics.counters)
    assert metrics.histograms["client.create_us"].count == 1


def test_cache_hit_miss_marks_and_counters():
    fs = LocoFS(ClusterConfig(num_metadata_servers=1))
    tracer = Tracer()
    metrics = MetricsRegistry()
    fs.attach_observability(tracer=tracer, metrics=metrics)
    c = fs.client()
    c.mkdir("/d")          # mkdir pre-caches /d for this client
    cold = fs.client()     # a second client starts with an empty cache
    cold.create("/d/a")    # miss on /d ...
    cold.create("/d/b")    # ... then a hit once cached
    names = [i.name for i in tracer.instants]
    assert "client.cache.miss" in names and "client.cache.hit" in names
    assert metrics.counters["client.cache.hit"].value >= 1
    assert metrics.counters["client.cache.miss"].value >= 1


# ---------------------------------------------------------------------------
# metrics: histogram bucket math, time series, registry
# ---------------------------------------------------------------------------

def test_histogram_quantiles_vs_exact():
    rng = random.Random(7)
    values = [rng.lognormvariate(3.0, 1.2) for _ in range(5000)]
    h = Histogram("t", buckets_per_decade=16)
    for v in values:
        h.record(v)
    values.sort()
    for q in (0.5, 0.95, 0.99):
        exact = _percentile(values, q)
        est = h.quantile(q)
        # one bucket spans 10**(1/16) ≈ 1.155x; allow one bucket of error
        assert est == pytest.approx(exact, rel=0.16)
    assert h.count == 5000
    assert h.mean == pytest.approx(sum(values) / len(values))
    assert h.quantile(0.0) >= h.minimum
    assert h.quantile(1.0) <= h.maximum


def test_histogram_bounds_and_edge_cases():
    h = Histogram("t", lo=1.0, hi=1000.0, buckets_per_decade=4)
    assert math.isnan(h.quantile(0.5))
    h.record(0.001)   # underflow
    h.record(5e6)     # overflow
    h.record(50.0)
    assert h.count == 3
    assert h.minimum == 0.001 and h.maximum == 5e6
    assert h.quantile(0.0) >= 0.0
    assert h.quantile(1.0) <= 5e6
    snap = h.snapshot()
    assert snap["count"] == 3 and snap["max"] == 5e6


def test_histogram_single_value():
    h = Histogram("t")
    for _ in range(10):
        h.record(42.0)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(42.0)


def test_timeseries_decimates_but_keeps_exact_aggregates():
    ts = TimeSeries("t", maxlen=64)
    n = 10_000
    for i in range(n):
        ts.sample(float(i), float(i % 10))
    assert len(ts.samples) < 64
    assert ts.count == n
    assert ts.maximum == 9.0
    assert ts.mean == pytest.approx(4.5)
    times = [t for t, _ in ts.samples]
    assert times == sorted(times)
    assert times[-1] > 0.9 * n  # decimation still covers the whole run


def test_timeseries_exact_at_maxlen_boundary():
    # up to maxlen-1 samples nothing is dropped; the maxlen-th sample
    # triggers the first halving, which keeps the newest sample
    ts = TimeSeries("t", maxlen=8)
    for i in range(7):
        ts.sample(float(i), float(i))
    assert len(ts.samples) == 7  # lossless below the cap
    assert ts.samples == [(float(i), float(i)) for i in range(7)]
    ts.sample(7.0, 7.0)  # crosses the boundary: halve, stride doubles
    assert len(ts.samples) == 4
    assert ts.samples[-1] == (7.0, 7.0)  # tail survives the halving
    times = [t for t, _ in ts.samples]
    assert times == sorted(times)
    # aggregates stay exact through the decimation
    assert ts.count == 8
    assert ts.maximum == 7.0
    assert ts.mean == pytest.approx(3.5)
    assert ts.last == (7.0, 7.0)


def test_registry_snapshot_shapes():
    reg = MetricsRegistry()
    reg.counter("a.b").inc(3)
    reg.gauge("g").set(0.5)
    reg.histogram("h").record(10.0)
    reg.timeseries("t").sample(1.0, 2.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"a.b": 3}
    assert snap["gauges"] == {"g": 0.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["timeseries"]["t"]["count"] == 1
    assert reg.counter("a.b") is reg.counters["a.b"]  # created once


def test_default_registry_roundtrip():
    reg = MetricsRegistry()
    prev = set_default_registry(reg)
    try:
        assert get_default_registry() is reg
    finally:
        set_default_registry(prev)
    assert get_default_registry() is prev


# ---------------------------------------------------------------------------
# satellite: exact-percentile interpolation in common.stats
# ---------------------------------------------------------------------------

def test_percentile_linear_interpolation():
    vals = [10.0, 20.0, 30.0, 40.0]
    assert _percentile(vals, 0.0) == 10.0
    assert _percentile(vals, 1.0) == 40.0
    assert _percentile(vals, 0.5) == pytest.approx(25.0)   # between 20 and 30
    assert _percentile(vals, 0.25) == pytest.approx(17.5)
    assert _percentile([5.0], 0.99) == 5.0


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------

def test_chrome_trace_export_roundtrip(tmp_path):
    fs = LocoFS(ClusterConfig(num_metadata_servers=2))
    tracer = Tracer()
    fs.attach_observability(tracer=tracer)
    c = fs.client()
    c.mkdir("/d")
    for i in range(3):
        c.create(f"/d/f{i}")
    c.stat_file("/d/f0")

    out = tmp_path / "trace.json"
    n = write_chrome_trace(tracer, str(out))
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert len(events) == n > 0

    xs = [e for e in events if e["ph"] == "X"]
    assert xs, "expected complete events"
    for e in xs:
        assert e["dur"] >= 0 and e["ts"] >= 0
        assert "span_id" in e["args"]
    # timed events are sorted by ts
    ts = [e["ts"] for e in events if e["ph"] in ("X", "i")]
    assert ts == sorted(ts)
    # metadata names both process groups and every track
    meta = [e for e in events if e["ph"] == "M"]
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "clients") in names
    assert ("process_name", "servers") in names
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert "client" in thread_names and "dms" in thread_names
    # client and server events live in different pid groups
    pid_of = {e["args"]["span_id"]: e["pid"] for e in xs}
    client_ops = [e for e in xs if e["name"].startswith("client.")]
    serves = [e for e in xs if e["name"].startswith("serve.")]
    assert {e["pid"] for e in client_ops} != {e["pid"] for e in serves}
    # every parent_id refers to an exported span
    for e in xs:
        parent = e["args"].get("parent_id")
        assert parent is None or parent in pid_of


def test_metrics_dump_json_ready(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.timeseries("q").sample(1.0, 3.0)
    doc = metrics_dump(reg, include_samples=True)
    text = json.dumps(doc)  # must be JSON-serializable
    back = json.loads(text)
    assert back["samples"]["q"] == [[1.0, 3.0]]


# ---------------------------------------------------------------------------
# harness integration
# ---------------------------------------------------------------------------

def test_throughput_metrics_queue_depth_and_utilization():
    from repro.harness import run_throughput

    metrics = MetricsRegistry()
    r = run_throughput("locofs-c", 2, op="touch", items_per_client=5,
                       client_scale=0.15, metrics=metrics)
    assert r.total_ops > 0
    depth_series = [n for n in metrics.series if n.endswith(".queue_depth")]
    util_series = [n for n in metrics.series if n.endswith(".utilization")]
    assert depth_series and util_series
    for name in depth_series:
        assert metrics.series[name].count > 0
    # final utilization gauges match the runner's own accounting
    for server, u in r.server_utilization.items():
        assert metrics.gauges[f"{server}.utilization"].value == pytest.approx(u)
    assert metrics.counters["harness.locofs-c.measured_ops"].value == r.total_ops


def test_latency_runner_traces_and_mirrors_histograms():
    from repro.harness import run_latency

    tracer = Tracer()
    metrics = MetricsRegistry()
    rec = run_latency("locofs-c", 2, n_items=4, ops=("mkdir", "touch"),
                      tracer=tracer, metrics=metrics)
    assert rec.count("mkdir") == 4 and rec.count("touch") == 4
    assert metrics.histograms["client.op.locofs-c.touch"].count == 4
    assert len(tracer.find("client.create")) == 4
    # exact recorder and bounded histogram agree on the mean
    s = rec.summary("touch")
    assert metrics.histograms["client.op.locofs-c.touch"].mean == pytest.approx(s.mean)


def test_throughput_unaffected_without_observability():
    from repro.harness import run_throughput

    kw = dict(op="touch", items_per_client=5, client_scale=0.15)
    plain = run_throughput("locofs-c", 2, **kw)
    observed = run_throughput("locofs-c", 2, metrics=MetricsRegistry(),
                              tracer=Tracer(), **kw)
    assert plain.iops == pytest.approx(observed.iops)
    assert plain.elapsed_us == pytest.approx(observed.elapsed_us)
