"""Unit tests for the cost model and meters — the timing plane's ground truth."""

import pytest

from repro.kv import HashStore
from repro.kv.meter import Meter, NullMeter
from repro.sim.costmodel import HDD, SSD, CostModel, DeviceModel, KVCostPolicy


class TestCostModel:
    def test_paper_rtt_default(self):
        # Fig. 6 caption: single RTT = 0.174 ms
        assert CostModel().rtt_us == 174.0

    def test_kv_costs_scale_with_bytes(self):
        cm = CostModel()
        assert cm.kv_cost_us("put", 1000) > cm.kv_cost_us("put", 10)
        assert cm.kv_cost_us("get", 0) == cm.kv_get_us

    def test_unknown_op_costs_only_bytes(self):
        cm = CostModel()
        assert cm.kv_cost_us("exotic", 100) == pytest.approx(100 * cm.kv_per_byte_us)

    def test_background_ops_free(self):
        cm = CostModel()
        assert cm.kv_cost_us("flush", 0) == 0.0
        assert cm.kv_cost_us("compaction", 0) == 0.0

    def test_serialize_grows_linearly(self):
        cm = CostModel()
        base = cm.serialize_us(0)
        assert cm.serialize_us(100) == pytest.approx(base + 100 * cm.serialize_per_byte_us)

    def test_transfer_time(self):
        cm = CostModel(bandwidth_bpus=117.0)
        assert cm.transfer_us(117) == pytest.approx(1.0)
        assert cm.transfer_us(0) == 0.0

    def test_colocated_shrinks_network_only(self):
        cm = CostModel()
        co = cm.colocated()
        assert co.rtt_us == cm.local_rtt_us < cm.rtt_us
        assert co.client_overhead_us < cm.client_overhead_us
        # KV costs are untouched: the software does the same work
        assert co.kv_put_us == cm.kv_put_us

    def test_kv_derived_single_node_rate_matches_paper_ballpark(self):
        # the paper cites ~100-300K small KV ops/s on one node; our put
        # cost for a ~220B record should land in that decade
        cm = CostModel()
        per_op = cm.kv_cost_us("put", 220) + cm.server_overhead_us
        rate = 1e6 / per_op
        assert 100_000 < rate < 400_000


class TestDeviceModel:
    def test_hdd_seek_dominates_small_random(self):
        assert HDD.read_us(4096, seeks=1) > 100 * SSD.read_us(4096, seeks=1) / 100
        assert HDD.seek_us > 50 * SSD.seek_us

    def test_sequential_scales_with_bytes(self):
        assert HDD.write_us(1 << 20) > HDD.write_us(1 << 10)

    def test_custom_device(self):
        dev = DeviceModel(name="nvme", seek_us=10.0, read_mbps=3000.0, write_mbps=2000.0)
        assert dev.read_us(3000) == pytest.approx(1.0)
        assert dev.write_us(2000, seeks=2) == pytest.approx(21.0)


class TestMeter:
    def test_charges_accumulate_via_policy(self):
        m = Meter(KVCostPolicy(CostModel()))
        m.charge("put", 100)
        m.charge("get", 50)
        cm = CostModel()
        assert m.total_us == pytest.approx(
            cm.kv_cost_us("put", 100) + cm.kv_cost_us("get", 50))
        assert m.count("put") == 1

    def test_explicit_charge(self):
        m = Meter()
        m.charge_us(42.0, "journal")
        assert m.total_us == 42.0
        assert m.count("journal") == 1

    def test_null_meter_counts_but_never_charges(self):
        m = NullMeter()
        m.charge("put", 1000)
        assert m.total_us == 0.0
        assert m.count("put") == 1

    def test_reset(self):
        m = Meter(KVCostPolicy(CostModel()))
        m.charge("put", 10)
        m.reset()
        assert m.total_us == 0.0
        assert m.count("put") == 0

    def test_store_integration(self):
        m = Meter(KVCostPolicy(CostModel()))
        s = HashStore(meter=m)
        s.put(b"k", b"v" * 100)
        before = m.total_us
        s.get(b"k")
        assert m.total_us > before

    def test_snapshot_delta_pattern(self):
        # the engines' service-time measurement idiom
        m = Meter(KVCostPolicy(CostModel()))
        s = HashStore(meter=m)
        before = m.snapshot()
        s.put(b"a", b"1")
        s.get(b"a")
        delta = m.snapshot() - before
        cm = CostModel()
        # gets charge key + value bytes (the value must cross the read path)
        assert delta == pytest.approx(cm.kv_cost_us("put", 2) + cm.kv_cost_us("get", 2))
