"""LocoFS: shared semantics suite + LocoFS-specific behaviour."""

import pytest

from repro.common.config import CacheConfig, ClusterConfig
from repro.common.errors import NoEntry
from repro.common.types import Credentials
from repro.core.fs import LocoFS
from repro.sim.costmodel import CostModel

from fs_semantics import FSSemantics


@pytest.fixture(params=["cached-4fms", "nocache-2fms", "coupled-2fms", "hashdms-2fms"])
def fs_deployment(request):
    cfgs = {
        "cached-4fms": ClusterConfig(num_metadata_servers=4),
        "nocache-2fms": ClusterConfig(
            num_metadata_servers=2, cache=CacheConfig(enabled=False)
        ),
        "coupled-2fms": ClusterConfig(num_metadata_servers=2, decoupled_file_metadata=False),
        "hashdms-2fms": ClusterConfig(num_metadata_servers=2, dms_backend="hash"),
    }
    return LocoFS(cfgs[request.param])


@pytest.fixture
def fs_client(fs_deployment):
    return fs_deployment.client()


@pytest.fixture
def fs_factory(fs_deployment):
    def make(cred):
        return fs_deployment.client(cred=cred)

    return make


class TestLocoFSSemantics(FSSemantics):
    """Run the shared contract over four LocoFS configurations."""


class TestLocoFSSpecific:
    def test_flattened_tree_file_count_per_fms(self):
        # files distribute across FMS servers via consistent hashing
        fs = LocoFS(ClusterConfig(num_metadata_servers=4))
        c = fs.client()
        c.mkdir("/d")
        for i in range(200):
            c.create(f"/d/f{i}")
        counts = [s.num_files() for s in fs.fms]
        assert sum(counts) == 200
        assert all(n > 0 for n in counts), "hashing should spread files over all FMS"

    def test_create_with_warm_cache_is_single_rpc(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        c = fs.client()
        c.mkdir("/d")  # also warms the cache with /d
        served_before = fs.cluster["dms"].requests_served
        for i in range(10):
            c.create(f"/d/f{i}")
        # the DMS was never contacted: parent resolution came from the cache
        assert fs.cluster["dms"].requests_served == served_before
        assert c.cache_stats["hits"] >= 10

    def test_nocache_contacts_dms_every_create(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1, cache=CacheConfig(enabled=False)))
        c = fs.client()
        c.mkdir("/d")
        before = fs.cluster["dms"].requests_served
        for i in range(10):
            c.create(f"/d/f{i}")
        assert fs.cluster["dms"].requests_served == before + 10

    def test_lease_expiry_forces_dms_lookup(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/one")  # cache hit
        # advance the virtual clock past the 30 s lease
        fs.engine.now += 31 * 1_000_000
        before = fs.cluster["dms"].requests_served
        c.create("/d/two")
        assert fs.cluster["dms"].requests_served == before + 1

    def test_dir_uuid_stable_across_rename(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        c = fs.client()
        c.mkdir("/a")
        u1 = c.stat_dir("/a").st_uuid
        c.create("/a/f")
        c.rename("/a", "/b")
        assert c.stat_dir("/b").st_uuid == u1
        # the file is still reachable: its FMS key (dir uuid + name) is unchanged
        assert c.stat_file("/b/f").is_file

    def test_file_uuid_stable_across_rename(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=4))
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"D" * 10000)
        u1 = c.stat_file("/f").st_uuid
        blocks_before = sum(s.num_blocks() for s in fs.object_servers)
        c.rename("/f", "/g")
        assert c.stat_file("/g").st_uuid == u1
        # no data blocks were relocated or rewritten
        assert sum(s.num_blocks() for s in fs.object_servers) == blocks_before

    def test_d_rename_moves_only_directories(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        c = fs.client()
        c.mkdir("/top")
        for i in range(5):
            c.mkdir(f"/top/sub{i}")
            c.create(f"/top/sub{i}/file")
        moved = fs.dms.op_rename("/top", "/renamed", c.cred)
        assert moved == 5  # only the 5 sub-directories relocated
        assert c.stat_file("/renamed/sub3/file").is_file

    def test_unlink_removes_data_blocks(self):
        fs = LocoFS(ClusterConfig())
        c = fs.client()
        c.create("/f")
        c.write("/f", 0, b"x" * 20000)
        assert sum(s.num_blocks() for s in fs.object_servers) > 0
        c.unlink("/f")
        assert sum(s.num_blocks() for s in fs.object_servers) == 0

    def test_mkdir_latency_close_to_one_rtt(self):
        # paper §4.2.1: mkdir ≈ 1.1x RTT — a single DMS round trip
        fs = LocoFS(ClusterConfig(num_metadata_servers=1), cost=CostModel())
        c = fs.client()
        t0 = fs.engine.now
        c.mkdir("/d")
        latency = fs.engine.now - t0
        rtt = fs.cost.rtt_us
        assert rtt <= latency <= 1.5 * rtt

    def test_touch_cached_is_about_one_rtt(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        c = fs.client()
        c.mkdir("/d")
        t0 = fs.engine.now
        c.create("/d/f")
        latency = fs.engine.now - t0
        # one FMS RPC (plus a connection switch from the DMS socket)
        assert latency <= 2.5 * fs.cost.rtt_us

    def test_rmdir_contacts_every_fms(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=4))
        c = fs.client()
        c.mkdir("/d")
        before = [fs.cluster[n].requests_served for n in fs.fms_names]
        c.rmdir("/d")
        after = [fs.cluster[n].requests_served for n in fs.fms_names]
        assert all(a == b + 1 for a, b in zip(after, before))

    def test_decoupled_access_part_size(self):
        # the access part value is tiny (20 bytes: ctime+mode+uid+gid)
        from repro.metadata.layout import FILE_ACCESS

        assert FILE_ACCESS.total_size == 20

    def test_touch_tracking_matches_table1(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1), track_touches=True)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.chmod("/d/f", 0o600)
        c.truncate("/d/f", 10)
        c.write("/d/f", 0, b"abc")
        c.read("/d/f", 0, 3)
        touches = fs.fms[0].touches
        assert touches["create"] == {"access", "dirent"}
        assert touches["chmod"] == {"access"}
        assert touches["truncate"] == {"content"}
        assert touches["write"] == {"content"}
        assert touches["read"] == {"content"}

    def test_event_engine_functional_parity(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=2), engine_kind="event")
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/f")
        c.write("/d/f", 0, b"hello")
        assert c.read("/d/f", 0, 5) == b"hello"
        with pytest.raises(NoEntry):
            c.stat_file("/d/ghost")

    def test_multiple_clients_independent_caches(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        a = fs.client()
        b = fs.client(cred=Credentials(uid=7, gid=7))
        a.mkdir("/shared", mode=0o777)
        b.create("/shared/from-b")
        assert a.stat_file("/shared/from-b").st_uid == 7
        assert a.cache_stats["entries"] >= 1
        assert b.cache_stats["entries"] >= 1
