"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "locofs-c" in out and "table1" in out


def test_run_single_experiment(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "12/12" in out


def test_run_quick_fig14(capsys):
    assert main(["run", "fig14", "--quick"]) == 0
    assert "d-rename" in capsys.readouterr().out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_latency_command(capsys):
    assert main(["latency", "locofs-c", "-n", "2", "--items", "8"]) == 0
    out = capsys.readouterr().out
    assert "touch" in out and "µs" in out


def test_throughput_command(capsys):
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "mkdir",
                 "--items", "8", "--client-scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IOPS" in out and "utilization" in out


def test_trace_command(capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    assert main(["trace", "locofs", "--out", str(out_file), "--items", "3"]) == 0
    out = capsys.readouterr().out
    assert "trace events written" in out and "perfetto" in out.lower()
    import json

    events = json.loads(out_file.read_text())["traceEvents"]
    # acceptance: a create op span with rpc and kv descendants
    xs = [e for e in events if e["ph"] == "X"]
    creates = [e for e in xs if e["name"] == "client.create"]
    assert creates
    sid = creates[0]["args"]["span_id"]
    kids = [e for e in xs if e["args"].get("parent_id") == sid]
    assert any(e["name"].startswith("rpc.") for e in kids)
    kid_ids = {e["args"]["span_id"] for e in kids}
    grandkids = [e for e in xs if e["args"].get("parent_id") in kid_ids]
    assert any(e["name"].startswith("kv.") for e in grandkids)


def test_trace_event_engine(capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    assert main(["trace", "locofs-nc", "--out", str(out_file),
                 "--engine", "event", "--items", "2", "-n", "2"]) == 0
    assert "event engine" in capsys.readouterr().out
    import json

    assert json.loads(out_file.read_text())["traceEvents"]


def test_trace_unknown_system(capsys, tmp_path):
    assert main(["trace", "nope", "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_metrics_flags(capsys, tmp_path):
    mpath = tmp_path / "metrics.json"
    assert main(["latency", "locofs", "-n", "2", "--items", "4",
                 "--metrics", "--metrics-out", str(mpath)]) == 0
    out = capsys.readouterr().out
    assert "== metrics" in out and "dms.requests" in out
    import json

    doc = json.loads(mpath.read_text())
    assert doc["counters"]["client.mkdir"] >= 4
    assert "client.op.locofs-c.touch" in doc["histograms"]


def test_throughput_metrics_flag(capsys):
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "touch",
                 "--items", "5", "--client-scale", "0.1", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "queue_depth" in out and ".utilization" in out


def test_fsck_demo(capsys):
    assert main(["fsck-demo"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "error" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])
