"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "locofs-c" in out and "table1" in out


def test_run_single_experiment(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "12/12" in out


def test_run_quick_fig14(capsys):
    assert main(["run", "fig14", "--quick"]) == 0
    assert "d-rename" in capsys.readouterr().out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_latency_command(capsys):
    assert main(["latency", "locofs-c", "-n", "2", "--items", "8"]) == 0
    out = capsys.readouterr().out
    assert "touch" in out and "µs" in out


def test_throughput_command(capsys):
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "mkdir",
                 "--items", "8", "--client-scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IOPS" in out and "utilization" in out


def test_fsck_demo(capsys):
    assert main(["fsck-demo"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "error" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])
