"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "locofs-c" in out and "table1" in out


def test_run_single_experiment(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "12/12" in out


def test_run_quick_fig14(capsys):
    assert main(["run", "fig14", "--quick"]) == 0
    assert "d-rename" in capsys.readouterr().out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_latency_command(capsys):
    assert main(["latency", "locofs-c", "-n", "2", "--items", "8"]) == 0
    out = capsys.readouterr().out
    assert "touch" in out and "µs" in out


def test_throughput_command(capsys):
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "mkdir",
                 "--items", "8", "--client-scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IOPS" in out and "utilization" in out


def test_trace_command(capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    assert main(["trace", "locofs", "--out", str(out_file), "--items", "3"]) == 0
    out = capsys.readouterr().out
    assert "trace events written" in out and "perfetto" in out.lower()
    import json

    events = json.loads(out_file.read_text())["traceEvents"]
    # acceptance: a create op span with rpc and kv descendants
    xs = [e for e in events if e["ph"] == "X"]
    creates = [e for e in xs if e["name"] == "client.create"]
    assert creates
    sid = creates[0]["args"]["span_id"]
    kids = [e for e in xs if e["args"].get("parent_id") == sid]
    assert any(e["name"].startswith("rpc.") for e in kids)
    kid_ids = {e["args"]["span_id"] for e in kids}
    grandkids = [e for e in xs if e["args"].get("parent_id") in kid_ids]
    assert any(e["name"].startswith("kv.") for e in grandkids)


def test_trace_event_engine(capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    assert main(["trace", "locofs-nc", "--out", str(out_file),
                 "--engine", "event", "--items", "2", "-n", "2"]) == 0
    assert "event engine" in capsys.readouterr().out
    import json

    assert json.loads(out_file.read_text())["traceEvents"]


def test_trace_unknown_system(capsys, tmp_path):
    assert main(["trace", "nope", "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_metrics_flags(capsys, tmp_path):
    mpath = tmp_path / "metrics.json"
    assert main(["latency", "locofs", "-n", "2", "--items", "4",
                 "--metrics", "--metrics-out", str(mpath)]) == 0
    out = capsys.readouterr().out
    assert "== metrics" in out and "dms.requests" in out
    import json

    doc = json.loads(mpath.read_text())
    assert doc["counters"]["client.mkdir"] >= 4
    assert "client.op.locofs-c.touch" in doc["histograms"]


def test_throughput_metrics_flag(capsys):
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "touch",
                 "--items", "5", "--client-scale", "0.1", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "queue_depth" in out and ".utilization" in out


def test_trace_locofs_b_batching_spans(capsys, tmp_path):
    """`repro trace --system locofs-b` exports batch flush spans, per-record
    children, and flow links from deferred op spans to their flush."""
    out_file = tmp_path / "trace.json"
    assert main(["trace", "locofs-b", "--out", str(out_file),
                 "--engine", "event", "--items", "4", "-n", "2"]) == 0
    import json

    events = json.loads(out_file.read_text())["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    batches = [e for e in xs if e["name"].startswith("rpc.batch[")]
    assert batches
    records = [e for e in xs if e.get("cat") == "record"]
    assert records
    batch_ids = {e["args"]["span_id"] for e in batches}
    assert all(e["args"]["parent_id"] in batch_ids for e in records)
    # deferred creates carry link args and emit matched flow-event pairs
    creates = [e for e in xs if e["name"] == "client.create"]
    linked = [e for e in creates if e["args"].get("links")]
    assert linked
    assert all(link["kind"] == "batch-flush"
               for e in linked for link in e["args"]["links"])
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts and starts == finishes


def test_trace_locofs_b_composes_with_metrics(capsys, tmp_path):
    mpath = tmp_path / "metrics.json"
    assert main(["trace", "locofs-b", "--out", str(tmp_path / "t.json"),
                 "--items", "4", "-n", "2",
                 "--metrics", "--metrics-out", str(mpath)]) == 0
    out = capsys.readouterr().out
    assert "trace events written" in out and "== metrics" in out
    import json

    counters = json.loads(mpath.read_text())["counters"]
    assert counters["client.batch.flush"] >= 1
    assert any(k.endswith("batch.records") for k in counters)
    assert any(k.endswith("wal.group_commit") for k in counters)


def test_analyze_command_table(capsys):
    assert main(["analyze", "locofs-c", "locofs-b", "-n", "2",
                 "--items", "4"]) == 0
    out = capsys.readouterr().out
    assert "latency attribution: locofs-c" in out
    assert "latency attribution: locofs-b" in out
    assert "c-queue" in out and "p99(µs)" in out
    assert "deferred (write-behind)" in out
    assert "32 resolved, 32 deferred ops" in out  # locofs-b section


def test_analyze_json_and_trace_out(capsys, tmp_path):
    jpath = tmp_path / "report.json"
    tpath = tmp_path / "trace.json"
    assert main(["analyze", "locofs-b", "-n", "2", "--items", "4",
                 "--json", str(jpath), "--trace-out", str(tpath)]) == 0
    import json

    doc = json.loads(jpath.read_text())
    assert doc["schema"] == 1
    create = doc["systems"]["locofs-b"]["ops"]["client.create"]
    assert create["deferred"] == create["count"]
    assert create["phases_us"]["client_queue"]["mean"] > 0
    links = doc["systems"]["locofs-b"]["links"]
    assert links["count"] == links["resolved"] == links["deferred_ops"]
    # exported trace includes the heat counter track
    events = json.loads(tpath.read_text())["traceEvents"]
    assert any(e.get("ph") == "C" for e in events)


def test_analyze_baseline_gate(capsys, tmp_path):
    import json

    jpath = tmp_path / "report.json"
    assert main(["analyze", "locofs-c", "-n", "2", "--items", "4",
                 "--json", str(jpath)]) == 0
    capsys.readouterr()
    # same run vs itself: no drift
    assert main(["analyze", "locofs-c", "-n", "2", "--items", "4",
                 "--baseline", str(jpath)]) == 0
    assert "matches" in capsys.readouterr().out
    # corrupt the baseline shares: gate fails hard, soft-fail downgrades
    doc = json.loads(jpath.read_text())
    shares = doc["systems"]["locofs-c"]["ops"]["client.create"]["phase_share"]
    shares["network"], shares["kv"] = shares["kv"], shares["network"]
    jpath.write_text(json.dumps(doc))
    assert main(["analyze", "locofs-c", "-n", "2", "--items", "4",
                 "--baseline", str(jpath), "--max-drift", "5"]) == 1
    assert "drift" in capsys.readouterr().out
    assert main(["analyze", "locofs-c", "-n", "2", "--items", "4",
                 "--baseline", str(jpath), "--max-drift", "5",
                 "--soft-fail"]) == 0


def test_analyze_direct_engine(capsys):
    assert main(["analyze", "locofs-c", "--engine", "direct", "-n", "2",
                 "--items", "4"]) == 0
    out = capsys.readouterr().out
    assert "client.mkdir" in out and "client.stat" in out


def test_analyze_unknown_system(capsys):
    assert main(["analyze", "nope"]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_fsck_demo(capsys):
    assert main(["fsck-demo"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "error" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------------
# shared observability flags — one parent parser, exercised on every verb
# ---------------------------------------------------------------------------

def _read_telemetry(path):
    import json

    doc = json.loads(path.read_text())
    assert doc["schema"] == 1
    assert doc["n_windows"] <= doc["max_windows"]
    return doc


def test_obs_flags_on_latency(capsys, tmp_path):
    tpath = tmp_path / "tele.json"
    assert main(["latency", "locofs", "-n", "2", "--items", "4",
                 "--telemetry-out", str(tpath), "--slo"]) == 0
    out = capsys.readouterr().out
    assert "telemetry snapshot written" in out
    assert "client.create:availability" in out and "PASS" in out
    doc = _read_telemetry(tpath)
    assert doc["totals"]["ops"]["client.create"] == 4


def test_obs_flags_on_throughput(capsys, tmp_path):
    tpath = tmp_path / "tele.json"
    assert main(["throughput", "locofs-c", "-n", "2", "--op", "touch",
                 "--items", "5", "--client-scale", "0.1",
                 "--telemetry-out", str(tpath), "--telemetry-window", "64"]) == 0
    doc = _read_telemetry(tpath)
    assert doc["initial_window_us"] == 64.0
    assert doc["totals"]["ops"]["client.create"] >= 5


def test_obs_flags_on_availability(capsys, tmp_path):
    tpath = tmp_path / "tele.json"
    assert main(["availability", "locofs-c", "-n", "2", "--clients", "2",
                 "--items", "6", "--telemetry-out", str(tpath), "--slo"]) == 0
    assert "client.create:availability" in capsys.readouterr().out
    doc = _read_telemetry(tpath)
    # the crash scenario leaves its fingerprints in marks and errors
    assert doc["totals"]["marks"]["server.crash"] == 1
    assert doc["totals"]["marks"]["client.retry"] > 0
    assert doc["totals"]["errors"].get("client.create", 0) > 0


def test_obs_flags_on_trace(capsys, tmp_path):
    tpath = tmp_path / "tele.json"
    assert main(["trace", "locofs", "--out", str(tmp_path / "tr.json"),
                 "--items", "3", "--telemetry-out", str(tpath)]) == 0
    doc = _read_telemetry(tpath)
    assert doc["totals"]["ops"]["client.create"] == 3


def test_obs_flags_on_analyze(capsys, tmp_path):
    tpath = tmp_path / "tele.json"
    assert main(["analyze", "locofs-c", "-n", "2", "--items", "4",
                 "--telemetry-out", str(tpath)]) == 0
    assert "telemetry snapshot written" in capsys.readouterr().out
    doc = _read_telemetry(tpath)
    assert doc["totals"]["ops"]["client.create"] > 0


def test_obs_flags_on_run(capsys, tmp_path):
    # `run` installs the sink as the process-wide default for the harnesses
    tpath = tmp_path / "tele.json"
    assert main(["run", "fig6", "--quick", "--telemetry-out", str(tpath)]) == 0
    doc = _read_telemetry(tpath)
    assert doc["totals"]["ops"]["client.create"] > 0


# ---------------------------------------------------------------------------
# slo and dashboard verbs
# ---------------------------------------------------------------------------

def test_slo_check_passes_on_locofs_c(capsys, tmp_path):
    import json

    jpath = tmp_path / "report.json"
    assert main(["slo", "locofs-c", "--check", "--clients", "4",
                 "--items", "20", "--json", str(jpath)]) == 0
    out = capsys.readouterr().out
    assert "verdict" in out and "PASS" in out
    report = json.loads(jpath.read_text())
    assert report["ok"]


def test_slo_check_fails_on_locofs_nc(capsys):
    assert main(["slo", "locofs-nc", "--check", "--clients", "4",
                 "--items", "20"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "error budget exhausted" in captured.err


def test_slo_unknown_system(capsys):
    assert main(["slo", "nope"]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_dashboard_writes_self_contained_html(capsys, tmp_path):
    import re

    out_file = tmp_path / "dash.html"
    assert main(["dashboard", "locofs-nc", "--out", str(out_file),
                 "--clients", "4", "--items", "10"]) == 0
    assert "self-contained" in capsys.readouterr().out
    html = out_file.read_text()
    assert "<html" in html and "client.create:availability" in html
    # fully offline: no external scripts, stylesheets, or fetches
    assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html)
    assert "fetch(" not in html and "XMLHttpRequest" not in html


def test_dashboard_throughput_scenario(capsys, tmp_path):
    out_file = tmp_path / "dash.html"
    assert main(["dashboard", "locofs-c", "--out", str(out_file),
                 "--scenario", "throughput", "--items", "5",
                 "--client-scale", "0.1"]) == 0
    assert "IOPS" in capsys.readouterr().out
    assert "<html" in out_file.read_text()


# ---------------------------------------------------------------------------
# capacity verb and the slo churn scenario (ISSUE 9)
# ---------------------------------------------------------------------------

def test_capacity_sweep_json_table_and_dashboard(capsys, tmp_path):
    import json

    jpath = tmp_path / "capacity.json"
    hpath = tmp_path / "capacity.html"
    assert main(["capacity", "locofs-c", "--loads", "10000,40000",
                 "--horizon-us", "20000", "-n", "2", "--no-attribution",
                 "--json", str(jpath), "--dashboard-out", str(hpath)]) == 0
    out = capsys.readouterr().out
    assert "capacity sweep" in out and "knee" in out
    doc = json.loads(jpath.read_text())
    assert doc["schema"] == 1
    pts = doc["systems"]["locofs-c"]["points"]
    assert [pt["load"] for pt in pts] == [10_000.0, 40_000.0]
    assert all(pt["conservation_ok"] for pt in pts)
    html = hpath.read_text()
    assert "cap-goodput" in html and "cap-latency" in html


def test_capacity_check_gate_orders_knees(capsys):
    assert main(["capacity", "locofs-b", "locofs-nc", "--loads",
                 "20000,80000,240000", "--horizon-us", "30000", "-n", "2",
                 "--no-attribution", "--check"]) == 0
    out = capsys.readouterr().out
    assert "check OK" in out
    assert "knee(locofs-b) > knee(locofs-nc)" in out


def test_capacity_unknown_system(capsys):
    assert main(["capacity", "nope"]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_slo_churn_scenario_pass_and_fail(capsys):
    assert main(["slo", "locofs-a", "--scenario", "churn", "--check",
                 "--rate", "60000", "--horizon-us", "80000"]) == 0
    out = capsys.readouterr().out
    assert "throughput_floor" in out and "PASS" in out
    assert main(["slo", "locofs-nc", "--scenario", "churn", "--check",
                 "--rate", "60000", "--horizon-us", "80000"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
