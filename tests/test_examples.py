"""The example scripts are part of the public deliverable: keep them green."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_directory_has_the_promised_scripts():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "hpc_checkpoint.py",
        "system_comparison.py",
        "rename_acceleration.py",
        "trace_replay.py",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    root = pathlib.Path(__file__).parent.parent
    proc = subprocess.run(
        [sys.executable, str(root / "examples" / name)],
        capture_output=True, text=True, timeout=240, cwd=root,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their analysis"
