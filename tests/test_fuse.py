"""Tests for the FUSE-style POSIX adapter."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import Exists, InvalidArgument, NoEntry
from repro.core.fs import LocoFS
from repro.core.fuse import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    LocoFuse,
)


@pytest.fixture
def mount():
    fs = LocoFS(ClusterConfig(num_metadata_servers=2))
    return LocoFuse(fs.client()), fs


class TestFdLifecycle:
    def test_open_creat_close(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_WRONLY)
        assert fd >= 3
        fuse.close(fd)
        assert fuse.open_fd_count == 0

    def test_open_missing_without_creat_fails(self, mount):
        fuse, _ = mount
        with pytest.raises(NoEntry):
            fuse.open("/ghost", O_RDONLY)

    def test_o_excl_on_existing_fails(self, mount):
        fuse, _ = mount
        fuse.close(fuse.open("/f", O_CREAT))
        with pytest.raises(Exists):
            fuse.open("/f", O_CREAT | O_EXCL)

    def test_bad_fd_rejected(self, mount):
        fuse, _ = mount
        with pytest.raises(InvalidArgument):
            fuse.close(99)
        with pytest.raises(InvalidArgument):
            fuse.read(99, 10)

    def test_distinct_fds_independent_offsets(self, mount):
        fuse, _ = mount
        fd1 = fuse.open("/f", O_CREAT | O_RDWR)
        fuse.write(fd1, b"abcdef")
        fd2 = fuse.open("/f", O_RDONLY)
        assert fuse.read(fd2, 3) == b"abc"
        assert fuse.read(fd2, 3) == b"def"
        fuse.lseek(fd1, 0)
        assert fuse.read(fd1, 2) == b"ab"


class TestReadWrite:
    def test_sequential_write_then_read(self, mount):
        fuse, _ = mount
        fd = fuse.open("/data", O_CREAT | O_RDWR)
        assert fuse.write(fd, b"hello ") == 6
        assert fuse.write(fd, b"world") == 5
        fuse.lseek(fd, 0)
        assert fuse.read(fd, 11) == b"hello world"

    def test_write_requires_write_flag(self, mount):
        fuse, _ = mount
        fuse.close(fuse.open("/f", O_CREAT))
        fd = fuse.open("/f", O_RDONLY)
        with pytest.raises(InvalidArgument):
            fuse.write(fd, b"nope")

    def test_read_requires_read_flag(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_WRONLY)
        with pytest.raises(InvalidArgument):
            fuse.read(fd, 1)

    def test_o_trunc_resets_contents(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_WRONLY)
        fuse.write(fd, b"old contents")
        fuse.close(fd)
        fd = fuse.open("/f", O_WRONLY | O_TRUNC)
        fuse.close(fd)
        assert fuse.stat("/f").st_size == 0

    def test_o_append_positions_at_eof(self, mount):
        fuse, _ = mount
        fd = fuse.open("/log", O_CREAT | O_WRONLY)
        fuse.write(fd, b"line1\n")
        fuse.close(fd)
        fd = fuse.open("/log", O_WRONLY | O_APPEND)
        fuse.write(fd, b"line2\n")
        fuse.close(fd)
        fd = fuse.open("/log", O_RDONLY)
        assert fuse.read(fd, 100) == b"line1\nline2\n"

    def test_pread_pwrite_do_not_move_offset(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_RDWR)
        fuse.write(fd, b"0123456789")
        fuse.pwrite(fd, b"XX", 2)
        assert fuse.pread(fd, 4, 0) == b"01XX"
        # offset unchanged by the positional ops
        fuse.lseek(fd, 0)
        fuse.read(fd, 10)
        assert fuse.lseek(fd, 0, SEEK_CUR) == 10


class TestSeek:
    def test_seek_modes(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_RDWR)
        fuse.write(fd, b"x" * 100)
        assert fuse.lseek(fd, 10, SEEK_SET) == 10
        assert fuse.lseek(fd, 5, SEEK_CUR) == 15
        assert fuse.lseek(fd, -20, SEEK_END) == 80

    def test_negative_seek_rejected(self, mount):
        fuse, _ = mount
        fd = fuse.open("/f", O_CREAT | O_RDWR)
        with pytest.raises(InvalidArgument):
            fuse.lseek(fd, -1, SEEK_SET)


class TestNamespaceOps:
    def test_mkdir_readdir_rmdir(self, mount):
        fuse, _ = mount
        fuse.mkdir("/d")
        fuse.close(fuse.open("/d/f", O_CREAT))
        assert fuse.readdir("/d") == ["f"]
        fuse.unlink("/d/f")
        fuse.rmdir("/d")
        with pytest.raises(NoEntry):
            fuse.readdir("/d")

    def test_rename_and_stat(self, mount):
        fuse, _ = mount
        fuse.close(fuse.open("/a", O_CREAT))
        fuse.rename("/a", "/b")
        assert fuse.stat("/b").is_file

    def test_chmod_chown_access(self, mount):
        fuse, _ = mount
        fuse.close(fuse.open("/f", O_CREAT))
        fuse.chmod("/f", 0o600)
        fuse.chown("/f", 5, 5)
        st = fuse.stat("/f")
        assert st.st_mode & 0o7777 == 0o600
        assert (st.st_uid, st.st_gid) == (5, 5)
        assert fuse.access("/f", 4)


class TestFuseOverhead:
    def test_every_syscall_pays_the_crossing(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        client = fs.client()
        # native op cost
        t0 = fs.engine.now
        client.mkdir("/native")
        native = fs.engine.now - t0
        fuse = LocoFuse(fs.client(), fuse_overhead_us=100.0)
        t0 = fs.engine.now
        fuse.mkdir("/fused")
        fused = fs.engine.now - t0
        # small drift allowed: the DMS dirent value grows between the ops
        assert fused == pytest.approx(native + 100.0, abs=5.0)

    def test_overhead_configurable_to_zero(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        fuse = LocoFuse(fs.client(), fuse_overhead_us=0.0)
        t0 = fs.engine.now
        fuse.mkdir("/d")
        assert fs.engine.now - t0 < 2.0 * fs.cost.rtt_us
