"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.at(30, order.append, "c")
    sim.at(10, order.append, "a")
    sim.at(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.at(5, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_after_is_relative():
    sim = Simulator()
    seen = []
    sim.after(10, lambda: (seen.append(sim.now), sim.after(5, seen.append, sim.now + 5)))
    sim.run()
    assert seen == [10, 15]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(100, fired.append, 2)
    sim.run(until=50)
    assert fired == [1]
    assert sim.now == 50
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.after(1, chain, n + 1)

    sim.after(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.after(1, forever)

    sim.after(0, forever)
    sim.run(max_events=100)
    assert sim.events_processed == 100


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        out = []
        for i in range(50):
            sim.at(i % 7, out.append, i)
        sim.run()
        return out

    assert build() == build()


def test_heap_events_precede_ready_chain_at_same_instant():
    """Interleaved zero-delay spawns and timed events at one instant.

    Every heap entry at time t was pushed before the clock reached t, so
    it must fire before any zero-delay continuation created *at* t — even
    when the continuations form a self-feeding chain.
    """
    sim = Simulator()
    order = []
    sim.at(10, order.append, "timed-a")

    def chain(n):
        order.append(f"ready-{n}")
        if n < 3:
            sim.after(0.0, chain, n + 1)

    sim.at(10, chain, 0)
    sim.at(10, order.append, "timed-b")
    sim.run()
    assert order == ["timed-a", "ready-0", "timed-b",
                     "ready-1", "ready-2", "ready-3"]


def test_resumed_run_does_not_starve_same_instant_heap_events():
    """Regression (ISSUE 7 satellite): a zero-delay spawn chain queued
    after a bounded run stopped mid-instant must not starve heap events
    still pending at the current virtual time.

    A bounded ``run`` can return with the clock standing at t while heap
    entries at t remain.  Ready entries appended afterwards carry later
    scheduling order, so the full-drain resume must fire the leftover
    heap entries first (the resumption-edge pre-drain) — a ready-first
    drain would run the whole chain ahead of them, and an unbounded
    chain would starve them forever.
    """
    sim = Simulator()
    order = []
    sim.at(10, order.append, "timed-a")
    sim.at(10, order.append, "timed-b")
    sim.run(max_events=1)  # stops mid-instant: now == 10, timed-b queued
    assert order == ["timed-a"]
    assert sim.now == 10

    def chain(n):
        order.append(f"ready-{n}")
        if n < 3:
            sim.after(0.0, chain, n + 1)

    sim.after(0.0, chain, 0)  # lands in the ready queue at t == 10
    sim.run()
    assert order == ["timed-a", "timed-b",
                     "ready-0", "ready-1", "ready-2", "ready-3"]


def test_bounded_run_interleaves_heap_before_ready_at_same_instant():
    sim = Simulator()
    order = []
    sim.at(10, order.append, "timed-a")
    sim.at(10, order.append, "timed-b")
    sim.run(max_events=1)
    sim.after(0.0, order.append, "ready-0")
    # the bounded loop must also prefer same-instant heap entries
    sim.run(max_events=1)
    assert order == ["timed-a", "timed-b"]
    sim.run(max_events=1)
    assert order == ["timed-a", "timed-b", "ready-0"]


def test_run_gated_blocks_at_horizon_then_drains():
    sim = Simulator()
    order = []
    sim.at(10, order.append, "a")
    sim.at(20, order.append, "b")
    assert sim.run_gated(15) is False  # blocked: "b" is past the horizon
    assert order == ["a"]
    assert sim.now == 15
    assert sim.run_gated(25) is True
    assert order == ["a", "b"]


def test_run_gated_fires_spawned_continuations_within_horizon():
    sim = Simulator()
    order = []

    def spawner():
        order.append("spawn")
        sim.after(0.0, order.append, "child")
        sim.after(100.0, order.append, "far")

    sim.at(10, spawner)
    assert sim.run_gated(10) is False  # "far" remains beyond the horizon
    assert order == ["spawn", "child"]
    assert sim.run_gated(200) is True
    assert order == ["spawn", "child", "far"]
