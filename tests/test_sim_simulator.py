"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.at(30, order.append, "c")
    sim.at(10, order.append, "a")
    sim.at(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.at(5, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_after_is_relative():
    sim = Simulator()
    seen = []
    sim.after(10, lambda: (seen.append(sim.now), sim.after(5, seen.append, sim.now + 5)))
    sim.run()
    assert seen == [10, 15]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(100, fired.append, 2)
    sim.run(until=50)
    assert fired == [1]
    assert sim.now == 50
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.after(1, chain, n + 1)

    sim.after(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.after(1, forever)

    sim.after(0, forever)
    sim.run(max_events=100)
    assert sim.events_processed == 100


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        out = []
        for i in range(50):
            sim.at(i % 7, out.append, i)
        sim.run()
        return out

    assert build() == build()
