"""Golden regression test: virtual-time results are bit-identical.

The goldens in ``tests/goldens/determinism.json`` were captured from the
tree *before* the hot-path optimizations landed.  Every optimization since
is required to leave the simulated clock and per-op latency statistics
exactly unchanged — not approximately, bit-for-bit (JSON round-trips
doubles exactly, so ``==`` on the parsed documents is the right check).

If this test fails after an intentional model change (new cost model,
different op mix), recapture with::

    PYTHONPATH=src python scripts/capture_determinism_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.harness import goldens

GOLDEN_PATH = Path(__file__).parent / "goldens" / "determinism.json"
GOLDEN_R_PATH = Path(__file__).parent / "goldens" / "determinism_locofs_r.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return goldens.determinism_fingerprint()


def test_golden_covers_all_seven_systems(golden):
    assert set(golden["systems"]) == set(goldens.GOLDEN_SYSTEMS)
    assert len(goldens.GOLDEN_SYSTEMS) == 7


def test_schema_and_workload_unchanged(golden, current):
    assert current["schema"] == golden["schema"]
    assert current["workload"] == golden["workload"]


@pytest.mark.parametrize("system", goldens.GOLDEN_SYSTEMS)
def test_virtual_time_bit_identical(system, golden, current):
    want = golden["systems"][system]
    got = current["systems"][system]
    # direct engine: final virtual clock after the scripted op sequence
    assert got["direct_now_us"] == want["direct_now_us"], (
        f"{system}: DirectEngine virtual clock drifted"
    )
    # per-op latency statistics (count/mean/percentiles/min/max)
    assert got["latency_stats"] == want["latency_stats"], (
        f"{system}: op latency statistics drifted"
    )
    # event engine: closed-loop elapsed time and completed-op totals
    assert got["event_elapsed_us"] == want["event_elapsed_us"], (
        f"{system}: EventEngine elapsed virtual time drifted"
    )
    assert got["event_total_ops"] == want["event_total_ops"]
    assert got["event_num_clients"] == want["event_num_clients"]


def test_full_document_equality(golden, current):
    # belt and braces: any field added/removed/changed anywhere shows up here
    assert current == golden


def test_empty_fault_schedule_is_bit_identical(golden, monkeypatch):
    """An attached-but-empty FaultSchedule must be a perfect no-op.

    The fault layer guards every check on "any faults configured?" and
    draws no randomness for an empty schedule, so the seven golden
    systems must fingerprint bit-identically with one attached.
    """
    from repro.harness import mdtest, registry, runner
    from repro.sim.faults import FaultSchedule

    real = registry.make_system

    def with_empty_faults(*args, **kwargs):
        system = real(*args, **kwargs)
        system.engine.attach_faults(FaultSchedule())
        return system

    monkeypatch.setattr(registry, "make_system", with_empty_faults)
    monkeypatch.setattr(runner, "make_system", with_empty_faults)
    monkeypatch.setattr(mdtest, "make_system", with_empty_faults)
    assert goldens.determinism_fingerprint() == golden


def test_attached_telemetry_is_clock_invisible(golden):
    """A streaming TelemetrySink must never perturb virtual time.

    The sink only *reads* the clock at span close; it performs no
    virtual-time arithmetic and draws no randomness, so fingerprinting
    the seven golden systems with the process-default sink installed
    (the same path ``repro ... --telemetry-out`` takes) must match the
    unattached goldens bit-for-bit — while the sink itself fills up.
    """
    from repro.obs import TelemetrySink, set_default_telemetry

    sink = TelemetrySink()
    previous = set_default_telemetry(sink)
    try:
        assert goldens.determinism_fingerprint() == golden
    finally:
        set_default_telemetry(previous)
    # the invariance is only meaningful if the sink really was attached
    assert sink.total_ops > 0
    assert sink.count_ops("client.create") > 0


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_is_bit_identical(shards, golden):
    """ISSUE-7 tentpole invariant: partitioning the servers across forked
    worker processes (``repro.sim.shard``) must leave every virtual-time
    result bit-identical to the single-process run.

    Each remote proxy recomputes the same ``arrive``/``start`` floats the
    in-process node would have used and folds back the worker's metered
    ``total_us`` verbatim, so ``service = total_us - before + overhead``
    is the identical float subtraction — the whole fingerprint document
    must therefore equal the single-process golden byte-for-byte.
    """
    assert goldens.determinism_fingerprint(shards=shards) == golden


@pytest.mark.parametrize("system", ["locofs-cf", "locofs-df", "locofs-b"])
def test_sharded_non_golden_systems_bit_identical(system):
    """The registry systems outside the golden seven (including the
    write-behind LocoFS-B, which exercises the whole-batch remote
    dispatch path) must also fingerprint identically under sharding."""
    assert (goldens.fingerprint_system(system, shards=2)
            == goldens.fingerprint_system(system))


class TestLocoFSRGolden:
    """LocoFS-R determinism golden (its own file: the seven-system golden
    asserts ``len == 7`` and predates the replicated DMS).

    The replicated directory tier adds Quorum fan-outs, client-relayed
    appends, and hashed election timeouts to the timing plane — all of
    which must be exactly deterministic for a fixed deployment."""

    @pytest.fixture(scope="class")
    def golden_r(self):
        return json.loads(GOLDEN_R_PATH.read_text())

    def test_fingerprint_bit_identical(self, golden_r):
        assert goldens.fingerprint_system("locofs-r") == golden_r

    def test_empty_fault_schedule_is_bit_identical(self, golden_r, monkeypatch):
        # replication consults no RNG (election jitter is a pure hash), so
        # an attached-but-empty schedule must be a perfect no-op here too
        from repro.harness import mdtest, registry, runner
        from repro.sim.faults import FaultSchedule

        real = registry.make_system

        def with_empty_faults(*args, **kwargs):
            system = real(*args, **kwargs)
            system.engine.attach_faults(FaultSchedule())
            return system

        monkeypatch.setattr(registry, "make_system", with_empty_faults)
        monkeypatch.setattr(runner, "make_system", with_empty_faults)
        monkeypatch.setattr(mdtest, "make_system", with_empty_faults)
        assert goldens.fingerprint_system("locofs-r") == golden_r


def test_sharded_rawkv_bit_identical():
    """rawkv speaks put/get, not the mdtest ops, so compare a throughput
    run directly instead of the fingerprint workload."""
    from repro.harness import run_throughput

    def run(shards):
        r = run_throughput("rawkv", 2, op="put", items_per_client=8,
                           client_scale=0.2, shards=shards)
        return (r.elapsed_us, r.total_ops, r.num_clients)

    assert run(1) == run(2)
