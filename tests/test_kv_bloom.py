"""Unit tests for the bloom filter."""

from repro.kv.bloom import BloomFilter


def test_added_keys_always_found():
    bf = BloomFilter(num_keys=100)
    keys = [f"key-{i}".encode() for i in range(100)]
    for k in keys:
        bf.add(k)
    assert all(bf.may_contain(k) for k in keys)


def test_false_positive_rate_reasonable():
    n = 2000
    bf = BloomFilter(num_keys=n, bits_per_key=10)
    for i in range(n):
        bf.add(f"member-{i}".encode())
    fp = sum(bf.may_contain(f"absent-{i}".encode()) for i in range(n))
    # 10 bits/key should give about 1%; allow generous slack
    assert fp / n < 0.05


def test_empty_filter_rejects():
    bf = BloomFilter(num_keys=10)
    assert not bf.may_contain(b"anything")


def test_serialization_roundtrip():
    bf = BloomFilter(num_keys=50)
    for i in range(50):
        bf.add(f"k{i}".encode())
    restored = BloomFilter.from_bytes(bf.to_bytes())
    assert restored.num_bits == bf.num_bits
    assert restored.num_hashes == bf.num_hashes
    for i in range(50):
        assert restored.may_contain(f"k{i}".encode())


def test_bad_magic_rejected():
    import pytest

    with pytest.raises(ValueError):
        BloomFilter.from_bytes(b"\x00" * 32)


def test_zero_keys_clamped():
    bf = BloomFilter(num_keys=0)
    bf.add(b"x")
    assert bf.may_contain(b"x")
