"""Tests for the hot-path caches added by the performance overhaul.

Three properties matter: bounds are respected (no unbounded memory), memos
never change answers (invalid inputs still raise, valid answers equal the
uncached computation), and placement caches invalidate when ring
membership changes.
"""

import pytest

from repro.common import pathutil
from repro.common.errors import InvalidArgument
from repro.metadata import chash
from repro.metadata.chash import ConsistentHashRing, file_placement_key


# ---------------------------------------------------------------------------
# pathutil memoization
# ---------------------------------------------------------------------------


class TestPathMemo:
    def test_normalize_memo_is_bounded(self):
        pathutil.normalize.cache_clear()
        for i in range(pathutil._MEMO_SIZE + 500):
            pathutil.normalize(f"/bounded/n{i}")
        info = pathutil.normalize.cache_info()
        assert info.currsize <= pathutil._MEMO_SIZE

    def test_split_memo_is_bounded(self):
        pathutil.split.cache_clear()
        for i in range(pathutil._MEMO_SIZE + 500):
            pathutil.split(f"/bounded/s{i}")
        info = pathutil.split.cache_info()
        assert info.currsize <= pathutil._MEMO_SIZE

    @pytest.mark.parametrize(
        "bad",
        ["", "relative", "relative/path", "/a/../b", "/a/./b", "/..", "/.",
         "/a\x00b", "/" + "x" * 300],
    )
    def test_normalize_rejects_invalid_paths_every_time(self, bad):
        # lru_cache does not cache exceptions: the same invalid path must
        # raise on repeated calls, not be served from the memo
        for _ in range(3):
            with pytest.raises(InvalidArgument):
                pathutil.normalize(bad)

    @pytest.mark.parametrize(
        "path,expect",
        [
            ("/", "/"),
            ("/a", "/a"),
            ("/a/b/c", "/a/b/c"),
            ("/a//b/", "/a/b"),
            ("//", "/"),
            ("/a/", "/a"),
            ("/.hidden", "/.hidden"),
            ("/a/.rc.d/b", "/a/.rc.d/b"),
            ("/tail.", "/tail."),
        ],
    )
    def test_normalize_answers_unchanged(self, path, expect):
        assert pathutil.normalize(path) == expect

    def test_split_answers_unchanged(self):
        assert pathutil.split("/") == ("/", "")
        assert pathutil.split("/a") == ("/", "a")
        assert pathutil.split("/a/b/") == ("/a", "b")

    def test_memoized_results_consistent_with_each_other(self):
        # repeated calls return the same object/value
        a1 = pathutil.normalize("/memo/x")
        a2 = pathutil.normalize("/memo/x")
        assert a1 == a2
        s1 = pathutil.split("/memo/x")
        s2 = pathutil.split("/memo/x")
        assert s1 == s2


# ---------------------------------------------------------------------------
# consistent-hash ring caches
# ---------------------------------------------------------------------------


def _uncached_lookup(ring: ConsistentHashRing, key: bytes) -> str:
    """Reference lookup bypassing the per-ring lookup cache."""
    import bisect

    point = chash._hash64(key)
    idx = bisect.bisect_right(ring._points, point)
    if idx == len(ring._points):
        idx = 0
    return ring._ring[idx][1]


class TestRingCaches:
    def test_ring_matches_incremental_construction(self):
        # the memoized sorted() construction must equal what per-vnode
        # insort produced: check ring contents are sorted and complete
        ring = ConsistentHashRing(vnodes=16)
        for n in ("fms0", "fms1", "fms2"):
            ring.add_node(n)
        assert list(ring._ring) == sorted(ring._ring)
        assert len(ring._ring) == 3 * 16
        assert {n for _, n in ring._ring} == {"fms0", "fms1", "fms2"}

    def test_identical_membership_shares_construction(self):
        r1 = ConsistentHashRing(vnodes=16)
        r2 = ConsistentHashRing(vnodes=16)
        for n in ("a", "b"):
            r1.add_node(n)
        for n in ("b", "a"):  # different insertion order, same membership
            r2.add_node(n)
        assert r1._ring == r2._ring

    def test_lookup_cache_consistent_and_bounded(self):
        ring = ConsistentHashRing(vnodes=8)
        for n in ("s0", "s1", "s2", "s3"):
            ring.add_node(n)
        keys = [file_placement_key(7, f"f{i}") for i in range(200)]
        first = [ring.lookup(k) for k in keys]
        again = [ring.lookup(k) for k in keys]  # served from cache
        assert first == again
        assert first == [_uncached_lookup(ring, k) for k in keys]
        assert len(ring._lookup_cache) <= chash._LOOKUP_CACHE_MAX

    def test_version_bumps_on_membership_change(self):
        ring = ConsistentHashRing(vnodes=8)
        v0 = ring.version
        ring.add_node("s0")
        assert ring.version > v0
        v1 = ring.version
        ring.add_node("s1")
        assert ring.version > v1
        v2 = ring.version
        ring.remove_node("s0")
        assert ring.version > v2

    def test_lookup_cache_invalidated_on_add_and_remove(self):
        ring = ConsistentHashRing(vnodes=64)
        ring.add_node("s0")
        keys = [file_placement_key(1, f"f{i}") for i in range(64)]
        assert all(ring.lookup(k) == "s0" for k in keys)
        ring.add_node("s1")
        after_add = [ring.lookup(k) for k in keys]
        assert after_add == [_uncached_lookup(ring, k) for k in keys]
        assert "s1" in set(after_add)  # some keys must move to the new node
        ring.remove_node("s1")
        assert all(ring.lookup(k) == "s0" for k in keys)


# ---------------------------------------------------------------------------
# client placement cache
# ---------------------------------------------------------------------------


class TestClientPlacementCache:
    def _client(self):
        from repro.common.config import ClusterConfig
        from repro.core.fs import LocoFS

        system = LocoFS(ClusterConfig(num_metadata_servers=4), engine_kind="direct")
        return system, system.client()

    def test_placement_cache_hits_match_ring(self):
        _, client = self._client()
        for i in range(50):
            name = f"f{i}"
            direct = client.ring.lookup(file_placement_key(3, name))
            assert client._fms_for(3, name) == direct
            assert client._fms_for(3, name) == direct  # cached answer

    def test_placement_cache_invalidated_on_ring_change(self):
        _, client = self._client()
        before = {i: client._fms_for(5, f"f{i}") for i in range(32)}
        victim = client.fms_names[-1]
        client.ring.remove_node(victim)
        after = {i: client._fms_for(5, f"f{i}") for i in range(32)}
        for i, fms in after.items():
            assert fms != victim
            assert fms == client.ring.lookup(file_placement_key(5, f"f{i}"))
        # keys that were on the removed node must have moved
        moved = [i for i in before if before[i] == victim]
        assert all(after[i] != before[i] for i in moved)

    def test_placement_cache_repopulates_after_add(self):
        _, client = self._client()
        client._fms_for(9, "x")
        client.ring.add_node("fms-extra")
        assert client._fms_for(9, "x") == client.ring.lookup(
            file_placement_key(9, "x")
        )

    def test_placement_cache_bounded(self):
        from repro.core import client as client_mod

        _, client = self._client()
        n = client_mod._PLACEMENT_CACHE_MAX + 100
        for i in range(0, n, 997):  # sparse sample is enough to check bound
            client._fms_for(i, "f")
        assert len(client._placement_cache) <= client_mod._PLACEMENT_CACHE_MAX

    def test_create_still_lands_on_ring_choice(self):
        # end-to-end: files created through the client land on the FMS the
        # (uncached) ring arithmetic picks
        system, client = self._client()
        client.mkdir("/d")
        info = system.engine.run(client._g_dir("/d"))
        for i in range(16):
            client.create(f"/d/f{i}")
            expected = _uncached_lookup(
                client.ring, file_placement_key(info["uuid"], f"f{i}")
            )
            assert client._fms_for(info["uuid"], f"f{i}") == expected
