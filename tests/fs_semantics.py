"""Shared file-system semantics suite.

Every system in the repository (LocoFS and all baselines) must pass these
tests.  A system's test module subclasses :class:`FSSemantics` and
provides a ``fs_client`` pytest fixture returning a fresh client on a
fresh deployment.
"""

import pytest

from repro.common.errors import (
    Exists,
    InvalidArgument,
    NoEntry,
    NotEmpty,
    PermissionDenied,
)
from repro.common.types import Credentials


class FSSemantics:
    """POSIX-ish behaviour contract, system-agnostic."""

    # -- directories -----------------------------------------------------------
    def test_mkdir_and_stat(self, fs_client):
        fs_client.mkdir("/a")
        st = fs_client.stat_dir("/a")
        assert st.is_dir

    def test_mkdir_nested(self, fs_client):
        fs_client.mkdir("/a")
        fs_client.mkdir("/a/b")
        fs_client.mkdir("/a/b/c")
        assert fs_client.stat_dir("/a/b/c").is_dir

    def test_mkdir_existing_fails(self, fs_client):
        fs_client.mkdir("/a")
        with pytest.raises(Exists):
            fs_client.mkdir("/a")

    def test_mkdir_missing_parent_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.mkdir("/no/such/parent")

    def test_mkdir_root_fails(self, fs_client):
        with pytest.raises((Exists, InvalidArgument)):
            fs_client.mkdir("/")

    def test_rmdir_empty(self, fs_client):
        fs_client.mkdir("/gone")
        fs_client.rmdir("/gone")
        with pytest.raises(NoEntry):
            fs_client.stat_dir("/gone")

    def test_rmdir_nonempty_subdir_fails(self, fs_client):
        fs_client.mkdir("/a")
        fs_client.mkdir("/a/b")
        with pytest.raises(NotEmpty):
            fs_client.rmdir("/a")

    def test_rmdir_nonempty_file_fails(self, fs_client):
        fs_client.mkdir("/a")
        fs_client.create("/a/f")
        with pytest.raises(NotEmpty):
            fs_client.rmdir("/a")

    def test_rmdir_missing_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.rmdir("/missing")

    def test_rmdir_root_fails(self, fs_client):
        with pytest.raises((InvalidArgument, PermissionDenied, NotEmpty)):
            fs_client.rmdir("/")

    def test_readdir_mixed(self, fs_client):
        fs_client.mkdir("/d")
        fs_client.mkdir("/d/sub1")
        fs_client.mkdir("/d/sub2")
        fs_client.create("/d/f1")
        fs_client.create("/d/f2")
        entries = fs_client.readdir("/d")
        names = [e.name for e in entries]
        assert names == ["f1", "f2", "sub1", "sub2"]
        kinds = {e.name: e.is_dir for e in entries}
        assert kinds["sub1"] and not kinds["f1"]

    def test_readdir_empty(self, fs_client):
        fs_client.mkdir("/empty")
        assert fs_client.readdir("/empty") == []

    def test_readdir_missing_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.readdir("/nope")

    def test_readdir_root(self, fs_client):
        fs_client.mkdir("/top")
        assert "top" in [e.name for e in fs_client.readdir("/")]

    # -- files ---------------------------------------------------------------------
    def test_create_and_stat(self, fs_client):
        fs_client.mkdir("/a")
        fs_client.create("/a/f")
        st = fs_client.stat_file("/a/f")
        assert st.is_file
        assert st.st_size == 0

    def test_create_in_root(self, fs_client):
        fs_client.create("/rootfile")
        assert fs_client.stat_file("/rootfile").is_file

    def test_create_existing_fails(self, fs_client):
        fs_client.create("/f")
        with pytest.raises(Exists):
            fs_client.create("/f")

    def test_create_missing_parent_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.create("/no/f")

    def test_unlink(self, fs_client):
        fs_client.create("/f")
        fs_client.unlink("/f")
        with pytest.raises(NoEntry):
            fs_client.stat_file("/f")

    def test_unlink_missing_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.unlink("/missing")

    def test_unlink_then_recreate(self, fs_client):
        fs_client.create("/f")
        fs_client.unlink("/f")
        fs_client.create("/f")
        assert fs_client.stat_file("/f").is_file

    def test_generic_stat_dispatches(self, fs_client):
        fs_client.mkdir("/d")
        fs_client.create("/d/f")
        assert fs_client.stat("/d").is_dir
        assert fs_client.stat("/d/f").is_file
        assert fs_client.stat("/").is_dir
        with pytest.raises(NoEntry):
            fs_client.stat("/ghost")

    def test_open_checks_existence(self, fs_client):
        fs_client.create("/f")
        handle = fs_client.open("/f")
        assert handle["size"] == 0
        with pytest.raises(NoEntry):
            fs_client.open("/missing")

    # -- attributes ---------------------------------------------------------------------
    def test_chmod_file(self, fs_client):
        fs_client.create("/f", mode=0o644)
        fs_client.chmod("/f", 0o600)
        assert fs_client.stat_file("/f").st_mode & 0o7777 == 0o600

    def test_chmod_dir(self, fs_client):
        fs_client.mkdir("/d", mode=0o755)
        fs_client.chmod("/d", 0o700)
        assert fs_client.stat_dir("/d").st_mode & 0o7777 == 0o700

    def test_chown_file(self, fs_client):
        fs_client.create("/f")
        fs_client.chown("/f", 42, 43)
        st = fs_client.stat_file("/f")
        assert (st.st_uid, st.st_gid) == (42, 43)

    def test_access_respects_mode(self, fs_client):
        fs_client.create("/f", mode=0o640)
        assert fs_client.access("/f", 4)  # root reads anything
        assert fs_client.access("/f", 2)

    def test_truncate_sets_size(self, fs_client):
        fs_client.create("/f")
        fs_client.truncate("/f", 12345)
        assert fs_client.stat_file("/f").st_size == 12345

    # -- permissions (non-root credentials) ------------------------------------------------
    def test_permission_denied_on_locked_dir(self, fs_client, fs_factory):
        fs_client.mkdir("/locked", mode=0o700)
        other = fs_factory(Credentials(uid=1000, gid=1000))
        with pytest.raises(PermissionDenied):
            other.create("/locked/f")

    def test_non_owner_cannot_chmod(self, fs_client, fs_factory):
        fs_client.create("/f")
        other = fs_factory(Credentials(uid=1000, gid=1000))
        with pytest.raises(PermissionDenied):
            other.chmod("/f", 0o777)

    def test_other_user_can_use_open_dir(self, fs_client, fs_factory):
        fs_client.mkdir("/pub", mode=0o777)
        other = fs_factory(Credentials(uid=1000, gid=1000))
        other.create("/pub/mine")
        assert other.stat_file("/pub/mine").st_uid == 1000

    # -- data ----------------------------------------------------------------------------------
    def test_write_read_roundtrip(self, fs_client):
        fs_client.create("/f")
        data = b"The quick brown fox jumps over the lazy dog" * 100
        assert fs_client.write("/f", 0, data) == len(data)
        assert fs_client.read("/f", 0, len(data)) == data
        assert fs_client.stat_file("/f").st_size == len(data)

    def test_write_at_offset(self, fs_client):
        fs_client.create("/f")
        fs_client.write("/f", 0, b"aaaaaaaaaa")
        fs_client.write("/f", 5, b"BB")
        assert fs_client.read("/f", 0, 10) == b"aaaaaBBaaa"

    def test_write_spanning_blocks(self, fs_client):
        fs_client.create("/f")
        data = bytes(range(256)) * 64  # 16 KiB, several 4 KiB blocks
        fs_client.write("/f", 1000, data)
        assert fs_client.read("/f", 1000, len(data)) == data

    def test_read_past_eof_is_short(self, fs_client):
        fs_client.create("/f")
        fs_client.write("/f", 0, b"xyz")
        assert fs_client.read("/f", 0, 100) == b"xyz"
        assert fs_client.read("/f", 50, 10) == b""

    def test_read_missing_file_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.read("/missing", 0, 1)

    def test_write_updates_mtime_and_size(self, fs_client):
        fs_client.create("/f")
        st0 = fs_client.stat_file("/f")
        fs_client.write("/f", 0, b"x" * 100)
        st1 = fs_client.stat_file("/f")
        assert st1.st_size == 100
        assert st1.st_mtime >= st0.st_mtime

    # -- rename -------------------------------------------------------------------------------
    def test_rename_file_same_dir(self, fs_client):
        fs_client.create("/old")
        fs_client.rename("/old", "/new")
        assert fs_client.stat_file("/new").is_file
        with pytest.raises(NoEntry):
            fs_client.stat_file("/old")

    def test_rename_file_across_dirs(self, fs_client):
        fs_client.mkdir("/a")
        fs_client.mkdir("/b")
        fs_client.create("/a/f")
        fs_client.write("/a/f", 0, b"payload")
        fs_client.rename("/a/f", "/b/g")
        assert fs_client.read("/b/g", 0, 7) == b"payload"
        assert [e.name for e in fs_client.readdir("/a")] == []
        assert [e.name for e in fs_client.readdir("/b")] == ["g"]

    def test_rename_replaces_destination(self, fs_client):
        fs_client.create("/src")
        fs_client.write("/src", 0, b"SRC")
        fs_client.create("/dst")
        fs_client.write("/dst", 0, b"OLDDST")
        fs_client.rename("/src", "/dst")
        assert fs_client.read("/dst", 0, 3) == b"SRC"
        assert fs_client.stat_file("/dst").st_size == 3

    def test_rename_missing_fails(self, fs_client):
        with pytest.raises(NoEntry):
            fs_client.rename("/ghost", "/elsewhere")

    def test_rename_directory(self, fs_client):
        fs_client.mkdir("/olddir")
        fs_client.mkdir("/olddir/sub")
        fs_client.create("/olddir/f")
        fs_client.write("/olddir/f", 0, b"data")
        fs_client.rename("/olddir", "/newdir")
        assert fs_client.stat_dir("/newdir").is_dir
        assert fs_client.stat_dir("/newdir/sub").is_dir
        assert fs_client.read("/newdir/f", 0, 4) == b"data"
        with pytest.raises(NoEntry):
            fs_client.stat_dir("/olddir")

    def test_rename_dir_into_itself_fails(self, fs_client):
        fs_client.mkdir("/a")
        with pytest.raises(InvalidArgument):
            fs_client.rename("/a", "/a/b")

    def test_rename_deep_tree(self, fs_client):
        fs_client.mkdir("/r")
        for i in range(3):
            fs_client.mkdir(f"/r/d{i}")
            for j in range(2):
                fs_client.mkdir(f"/r/d{i}/e{j}")
                fs_client.create(f"/r/d{i}/e{j}/file")
        fs_client.rename("/r", "/moved")
        for i in range(3):
            for j in range(2):
                assert fs_client.stat_file(f"/moved/d{i}/e{j}/file").is_file

    # -- scale smoke -----------------------------------------------------------------------------
    def test_many_files_in_one_directory(self, fs_client):
        fs_client.mkdir("/big")
        n = 200
        for i in range(n):
            fs_client.create(f"/big/file{i:04d}")
        entries = fs_client.readdir("/big")
        assert len(entries) == n
        assert [e.name for e in entries] == [f"file{i:04d}" for i in range(n)]

    def test_deep_path(self, fs_client):
        path = ""
        for i in range(12):
            path += f"/d{i}"
            fs_client.mkdir(path)
        fs_client.create(path + "/leaf")
        assert fs_client.stat_file(path + "/leaf").is_file
