"""Unit tests for the baseline placement policies."""

import pytest

from repro.baselines.placement import (
    GlusterPlacement,
    ParentHashPlacement,
    StripedPlacement,
    SubtreePlacement,
)

SERVERS = [f"mds{i}" for i in range(4)]


class TestSubtree:
    def test_root_on_first_server(self):
        p = SubtreePlacement(SERVERS)
        assert p.inode_server("/") == "mds0"

    def test_whole_subtree_on_one_server(self):
        p = SubtreePlacement(SERVERS)
        home = p.inode_server("/proj")
        for path in ("/proj/a", "/proj/a/b", "/proj/a/b/c", "/proj/other"):
            assert p.inode_server(path) == home

    def test_different_subtrees_spread(self):
        p = SubtreePlacement(SERVERS)
        homes = {p.inode_server(f"/top{i}") for i in range(40)}
        assert len(homes) >= 3

    def test_dirent_with_parent(self):
        p = SubtreePlacement(SERVERS)
        assert p.dirent_server("/proj", "x") == p.inode_server("/proj")

    def test_readdir_single_server(self):
        p = SubtreePlacement(SERVERS)
        assert p.readdir_servers("/proj") == [p.inode_server("/proj")]


class TestStriped:
    def test_dirent_colocates_with_child(self):
        p = StripedPlacement(SERVERS)
        for name in ("a", "b", "c"):
            assert p.dirent_server("/d", name) == p.inode_server(f"/d/{name}")

    def test_readdir_touches_all(self):
        p = StripedPlacement(SERVERS)
        assert sorted(p.readdir_servers("/d")) == SERVERS

    def test_stripes_spread_names(self):
        p = StripedPlacement(SERVERS)
        homes = {p.inode_server(f"/d/f{i}") for i in range(40)}
        assert len(homes) >= 3


class TestParentHash:
    def test_children_colocate_in_parent_partition(self):
        p = ParentHashPlacement(SERVERS)
        home = p.dirent_home("/dir")
        for name in ("f1", "f2", "sub"):
            assert p.inode_server(f"/dir/{name}") == home
            assert p.dirent_server("/dir", name) == home

    def test_dir_inode_lives_with_its_parent(self):
        p = ParentHashPlacement(SERVERS)
        assert p.inode_server("/a/b") == p.dirent_home("/a")

    def test_root_children_on_root_partition(self):
        p = ParentHashPlacement(SERVERS)
        assert p.inode_server("/a") == "mds0"  # dirent_home("/") == servers[0]

    def test_different_dirs_spread(self):
        p = ParentHashPlacement(SERVERS)
        homes = {p.dirent_home(f"/dir{i}") for i in range(40)}
        assert len(homes) >= 3


class TestGluster:
    def test_file_dirent_follows_file(self):
        p = GlusterPlacement(SERVERS)
        assert p.dirent_server("/d", "f") == p.inode_server("/d/f")

    def test_readdir_touches_all_bricks(self):
        p = GlusterPlacement(SERVERS)
        assert sorted(p.readdir_servers("/d")) == SERVERS

    def test_files_spread_over_bricks(self):
        p = GlusterPlacement(SERVERS)
        homes = {p.inode_server(f"/d/f{i}") for i in range(40)}
        assert len(homes) >= 3


@pytest.mark.parametrize("cls", [SubtreePlacement, StripedPlacement,
                                 ParentHashPlacement, GlusterPlacement])
class TestAllPolicies:
    def test_deterministic(self, cls):
        a, b = cls(SERVERS), cls(SERVERS)
        for path in ("/", "/x", "/x/y", "/deep/er/path"):
            assert a.inode_server(path) == b.inode_server(path)

    def test_single_server_degenerates(self, cls):
        p = cls(["only"])
        for path in ("/", "/a", "/a/b"):
            assert p.inode_server(path) == "only"
            assert p.readdir_servers(path) == ["only"]

    def test_all_servers(self, cls):
        assert cls(SERVERS).all_servers() == SERVERS
