"""Capacity analyzer: knee detection, metastability, sweep determinism.

The detector is a pure function of swept points, so it is pinned here
against synthetic M/M/1-shaped curves; the sweep driver is exercised at
miniature scale for shape and byte-stability.
"""

import pytest

from repro.obs.capacity import (
    capacity_json,
    knee_ordering_ok,
    knee_point,
    metastable_region,
    saturating_phase,
    sweep_capacity,
)


def _pt(load, goodput, p99=0.0, **kw):
    d = {"load": load, "offered": load, "goodput": goodput, "p99": p99,
         "depth_slope": 0.0, "shed": 0, "abandoned": 0, "backlog": 0}
    d.update(kw)
    return d


def _mm1_curve():
    """Goodput tracks offered until ~100k, then flattens as p99 explodes —
    the textbook open-loop saturation shape (service rate mu = 100k)."""
    return [
        _pt(25_000, 24_900, p99=120.0),
        _pt(50_000, 49_800, p99=190.0),
        _pt(100_000, 95_000, p99=900.0),
        _pt(200_000, 99_000, p99=14_000.0, shed=80_000),
        _pt(400_000, 98_500, p99=15_000.0, shed=290_000),
    ]


# ---------------------------------------------------------------------------
# knee detector
# ---------------------------------------------------------------------------

def test_knee_on_mm1_curve():
    knee = knee_point(_mm1_curve())
    assert knee is not None
    assert knee["index"] == 3 and knee["load"] == 200_000
    assert "p99-inflection" in knee["reason"]


def test_knee_detector_is_stable_under_tail_perturbation():
    # jittering the saturated tail must not move the knee
    for bump in (0.8, 1.0, 1.2):
        pts = _mm1_curve()
        pts[4]["goodput"] *= bump
        pts[4]["p99"] *= bump
        assert knee_point(pts)["index"] == 3


def test_no_knee_on_linear_scaling():
    pts = [_pt(l, l * 0.99, p99=150.0)
           for l in (25_000, 50_000, 100_000, 200_000)]
    assert knee_point(pts) is None


def test_knee_requires_tail_signal_else_gain_only():
    # goodput flattens but tail stays calm -> reported, flagged gain-only
    pts = [_pt(50_000, 49_000, p99=100.0),
           _pt(100_000, 60_000, p99=110.0),
           _pt(200_000, 61_000, p99=112.0)]
    knee = knee_point(pts)
    assert knee["reason"] == "gain-only" and knee["index"] == 1


def test_knee_tail_signals_queue_depth_and_admission():
    pts = [_pt(50_000, 49_000, p99=100.0),
           _pt(100_000, 60_000, p99=110.0, depth_slope=3.5)]
    assert "queue-depth-rising" in knee_point(pts)["reason"]
    pts = [_pt(50_000, 49_000, p99=100.0),
           _pt(100_000, 60_000, p99=110.0, abandoned=500)]
    assert "admission-pressure" in knee_point(pts)["reason"]


# ---------------------------------------------------------------------------
# metastability and ordering
# ---------------------------------------------------------------------------

def test_metastable_region_flags_collapse_below_sustained():
    pts = [_pt(50_000, 50_000), _pt(100_000, 100_000),
           _pt(200_000, 95_000), _pt(400_000, 70_000)]
    # 95k >= 0.9 * 100k stays healthy; 70k < 90k is metastable
    assert metastable_region(pts) == [3]
    assert metastable_region([_pt(1000, 900), _pt(2000, 1800)]) == []


def test_knee_ordering_ok():
    report = {"systems": {
        "slow": {"knee": {"load": 60_000.0}},
        "fast": {"knee": {"load": 120_000.0}},
        "never": {"knee": None},
    }}
    assert knee_ordering_ok(report, "slow", "fast")
    assert not knee_ordering_ok(report, "fast", "slow")
    assert knee_ordering_ok(report, "fast", "never")  # no knee = +inf


# ---------------------------------------------------------------------------
# saturating-phase naming
# ---------------------------------------------------------------------------

def _attr(**phase_means):
    return {"ops": {"client.stat": {
        "count": 100,
        "phase_share": {p: 1.0 / len(phase_means) for p in phase_means},
        "phase_mean_us": dict(phase_means),
    }}}


def test_saturating_phase_names_the_grower_not_the_biggest():
    pre = _attr(network=500.0, server_queue=5.0, service=20.0)
    at = _attr(network=510.0, server_queue=400.0, service=22.0)
    # network is biggest in absolute share, but server_queue grew 80x
    assert saturating_phase(pre, at) == "server_queue"


def test_saturating_phase_falls_back_to_busiest_when_nothing_grew():
    pre = _attr(network=500.0, service=20.0)
    at = _attr(network=500.0, service=20.0)
    assert saturating_phase(pre, at) == "network"


# ---------------------------------------------------------------------------
# sweep driver (miniature)
# ---------------------------------------------------------------------------

def test_sweep_capacity_shape_and_byte_stability():
    kw = dict(systems=("locofs-c",), pack="dl-pipeline",
              loads=(10_000.0, 40_000.0), num_servers=2,
              horizon_us=20_000.0, seed=0, attribution=False)
    a = sweep_capacity(**kw)
    b = sweep_capacity(**kw)
    assert capacity_json(a) == capacity_json(b)  # acceptance criterion
    entry = a["systems"]["locofs-c"]
    assert [pt["load"] for pt in entry["points"]] == [10_000.0, 40_000.0]
    for pt in entry["points"]:
        assert pt["conservation_ok"]
        assert pt["goodput"] <= pt["offered"]
        assert pt["p999"] >= pt["p99"] >= pt["p50"]


def test_sweep_attribution_names_a_phase_at_the_knee():
    from repro.obs.analyze import PHASES

    report = sweep_capacity(systems=("locofs-nc",), pack="dl-pipeline",
                            loads=(20_000.0, 80_000.0), num_servers=2,
                            horizon_us=30_000.0, seed=0, attribution=True)
    entry = report["systems"]["locofs-nc"]
    assert entry["knee"] is not None and entry["knee"]["load"] == 80_000.0
    attr = entry["attribution"]
    assert attr["pre_knee"]["load"] == 20_000.0
    assert attr["at_knee"]["load"] == 80_000.0
    assert attr["at_knee"]["ops"]  # traced re-run saw real ops
    assert entry["saturating_phase"] in PHASES


def test_capacity_dashboard_panels():
    from repro.obs.dashboard import render_dashboard
    from repro.obs.telemetry import TelemetrySink

    report = sweep_capacity(systems=("locofs-c",), pack="dl-pipeline",
                            loads=(10_000.0, 40_000.0), num_servers=2,
                            horizon_us=20_000.0, attribution=False)
    html = render_dashboard(TelemetrySink(), capacity=report)
    assert "cap-goodput" in html and "cap-latency" in html
    assert "p999" in html
    # still fully offline: no external scripts, stylesheets, or fetches
    import re

    assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html)
    assert "fetch(" not in html
