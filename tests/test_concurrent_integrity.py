"""Concurrent clients on the event engine must leave a consistent namespace.

These are the closest thing to race tests the deterministic simulator
allows: many interleaved client processes mutate overlapping parts of the
tree, operations fail or succeed per POSIX rules, and afterwards fsck must
find every invariant intact and the namespace must match what the
successful operations imply.
"""

import pytest

from repro.common.config import CacheConfig, ClusterConfig
from repro.common.errors import FSError
from repro.core.fs import LocoFS
from repro.core.fsck import check
from repro.sim.rpc import LocalCharge


def run_concurrent(scripts, num_servers=3, cache=True):
    fs = LocoFS(
        ClusterConfig(num_metadata_servers=num_servers,
                      cache=CacheConfig(enabled=cache)),
        engine_kind="event",
    )
    engine = fs.engine
    outcomes = []

    def wrap(script, cid):
        client = fs.client()
        ok = 0
        failed = 0
        for op, args in script:
            yield LocalCharge(5.0)
            try:
                yield from client.op_generator(op, *args)
                ok += 1
            except FSError:
                failed += 1
        outcomes.append((cid, ok, failed))

    for cid, script in enumerate(scripts):
        engine.spawn(wrap(script, cid), client=engine.new_client())
    engine.sim.run()
    assert len(outcomes) == len(scripts)
    return fs, outcomes


class TestConcurrentClients:
    def test_disjoint_writers_all_succeed(self):
        scripts = []
        for cid in range(12):
            s = [("mkdir", (f"/c{cid}",))]
            s += [("create", (f"/c{cid}/f{i}",)) for i in range(8)]
            scripts.append(s)
        fs, outcomes = run_concurrent(scripts)
        assert all(failed == 0 for _, _, failed in outcomes)
        assert fs.total_files() == 96
        assert check(fs).clean

    def test_racing_creates_one_winner(self):
        # every client tries to create the same file; exactly one wins
        scripts = [[("create", ("/contested",))] for _ in range(10)]
        fs, outcomes = run_concurrent(scripts)
        wins = sum(ok for _, ok, _ in outcomes)
        assert wins == 1
        assert fs.total_files() == 1
        assert check(fs).clean

    def test_racing_mkdirs_one_winner(self):
        scripts = [[("mkdir", ("/race",))] for _ in range(8)]
        fs, outcomes = run_concurrent(scripts)
        assert sum(ok for _, ok, _ in outcomes) == 1
        assert check(fs).clean

    def test_create_vs_rmdir_interleaving_stays_consistent(self):
        # one client fills a directory while another repeatedly tries to
        # remove it; whatever interleaving happens, invariants must hold
        filler = [("mkdir", ("/hot",))] + [("create", (f"/hot/f{i}",)) for i in range(10)]
        remover = [("rmdir", ("/hot",))] * 6
        fs, outcomes = run_concurrent([filler, remover], cache=False)
        assert check(fs).clean

    def test_mixed_workload_high_interleaving(self):
        scripts = []
        for cid in range(8):
            s = [("mkdir", (f"/shared{cid % 2}",))]  # half collide
            for i in range(6):
                s.append(("create", (f"/shared{cid % 2}/c{cid}f{i}",)))
            s.append(("chmod", (f"/shared{cid % 2}/c{cid}f0", 0o600)))
            s.append(("write", (f"/shared{cid % 2}/c{cid}f1", 0, b"x" * 5000)))
            s.append(("unlink", (f"/shared{cid % 2}/c{cid}f2",)))
            scripts.append(s)
        fs, outcomes = run_concurrent(scripts, num_servers=4)
        report = check(fs)
        assert report.clean, report.errors
        # 8 clients x 6 creates, minus 8 unlinks
        assert report.files == 8 * 6 - 8

    def test_deterministic_across_runs(self):
        scripts = [[("mkdir", (f"/m{cid}",)), ("create", (f"/m{cid}/f",))]
                   for cid in range(6)]
        fs1, o1 = run_concurrent(scripts)
        fs2, o2 = run_concurrent(scripts)
        assert sorted(o1) == sorted(o2)
        assert fs1.engine.now == pytest.approx(fs2.engine.now)
