"""Tests for the benchmark harness: workloads, registry, runners, report."""

import pytest

from repro.common.stats import LatencyRecorder
from repro.harness import (
    LABELS,
    SYSTEM_NAMES,
    TABLE3_CLIENTS,
    TraceGenerator,
    Workload,
    clients_for,
    format_table,
    make_system,
    normalize,
    run_latency,
    run_throughput,
)
from repro.harness.registry import make_system as registry_make
from repro.sim.costmodel import CostModel


class TestWorkloads:
    def test_table3_matches_paper(self):
        # spot-check Table 3 verbatim values
        assert TABLE3_CLIENTS["locofs-nc"][1] == 30
        assert TABLE3_CLIENTS["locofs-c"][8] == 130
        assert TABLE3_CLIENTS["cephfs"][16] == 110
        assert TABLE3_CLIENTS["lustre-d1"][16] == 192

    def test_clients_for_scaling(self):
        assert clients_for("locofs-c", 1, scale=1.0) == 30
        assert clients_for("locofs-c", 1, scale=0.5) == 15
        assert clients_for("locofs-c", 1, scale=0.001) == 2  # floor

    def test_clients_for_interpolates_unknown_counts(self):
        assert clients_for("locofs-c", 32) > clients_for("locofs-c", 16) / 2

    def test_clients_for_unknown_system_falls_back(self):
        assert clients_for("rawkv", 1) == clients_for("lustre-d1", 1)
        assert clients_for("locofs-cf", 4) == clients_for("locofs-c", 4)

    def test_workload_paths(self):
        wl = Workload(depth=3)
        assert wl.client_root(7) == "/c0007"
        assert wl.work_dir(7) == "/c0007/d0/d1"
        assert wl.dir_chain(7) == ["/c0007", "/c0007/d0", "/c0007/d0/d1"]
        assert wl.file_path(7, 2) == "/c0007/d0/d1/f000002"

    def test_depth_one_has_flat_workdir(self):
        wl = Workload(depth=1)
        assert wl.work_dir(0) == "/c0000"


class TestRegistry:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_every_system_builds(self, name):
        sys_ = registry_make(name, num_servers=2)
        assert sys_ is not None
        close = getattr(sys_, "close", None)
        if close:
            close()

    def test_labels_cover_all_systems(self):
        assert set(LABELS) == set(SYSTEM_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_system("zfs", 1)

    def test_locofs_variants_differ(self):
        c = registry_make("locofs-c", 1)
        nc = registry_make("locofs-nc", 1)
        cf = registry_make("locofs-cf", 1)
        assert c.config.cache.enabled and not nc.config.cache.enabled
        assert c.config.decoupled_file_metadata and not cf.config.decoupled_file_metadata


class TestLatencyRunner:
    def test_records_all_requested_ops(self):
        rec = run_latency("locofs-c", 1, n_items=10)
        for op in ("mkdir", "touch", "dir-stat", "file-stat", "readdir", "rm", "rmdir"):
            assert rec.count(op) >= 1, op

    def test_sample_counts_match_items(self):
        rec = run_latency("locofs-c", 2, n_items=15, ops=("touch", "rm"))
        assert rec.count("touch") == 15
        assert rec.count("rm") == 15

    def test_file_meta_ops_supported(self):
        rec = run_latency("locofs-c", 2, n_items=8,
                          ops=("chmod", "chown", "access", "truncate"))
        for op in ("chmod", "chown", "access", "truncate"):
            assert rec.count(op) == 8

    def test_latency_positive_and_at_least_rtt_for_touch(self):
        cost = CostModel()
        rec = run_latency("locofs-nc", 1, n_items=10, cost=cost, ops=("touch",))
        assert rec.summary("touch").mean > cost.rtt_us  # at least one round trip

    def test_works_for_baselines(self):
        rec = run_latency("cephfs", 2, n_items=8, ops=("touch", "mkdir"))
        assert rec.summary("touch").mean > 0

    def test_depth_increases_nocache_latency(self):
        shallow = run_latency("locofs-nc", 1, n_items=10, depth=1, ops=("touch",))
        deep = run_latency("locofs-nc", 1, n_items=10, depth=24, ops=("touch",))
        assert deep.summary("touch").mean > shallow.summary("touch").mean


class TestThroughputRunner:
    def test_basic_result_fields(self):
        r = run_throughput("locofs-c", 1, op="touch", num_clients=5, items_per_client=10)
        assert r.total_ops == 50
        assert r.iops > 0
        assert r.elapsed_us > 0
        assert r.num_clients == 5
        assert "dms" in r.server_utilization

    def test_more_servers_more_touch_throughput(self):
        # enough clients that a single FMS saturates
        one = run_throughput("locofs-c", 1, op="touch", num_clients=40, items_per_client=15)
        four = run_throughput("locofs-c", 4, op="touch", num_clients=40, items_per_client=15)
        assert one.server_utilization["fms0"] > 0.8
        assert four.iops > one.iops

    def test_cache_beats_nocache(self):
        c = run_throughput("locofs-c", 4, op="touch", num_clients=20, items_per_client=15)
        nc = run_throughput("locofs-nc", 4, op="touch", num_clients=20, items_per_client=15)
        assert c.iops > nc.iops

    def test_destructive_ops_have_setup(self):
        r = run_throughput("locofs-c", 2, op="rm", num_clients=4, items_per_client=10)
        assert r.total_ops == 40

    def test_rawkv_put_and_get(self):
        put = run_throughput("rawkv", 1, op="put", num_clients=10, items_per_client=20)
        get = run_throughput("rawkv", 1, op="get", num_clients=10, items_per_client=20)
        assert put.iops > 0 and get.iops > 0

    def test_throughput_deterministic(self):
        a = run_throughput("locofs-c", 2, op="touch", num_clients=8, items_per_client=10)
        b = run_throughput("locofs-c", 2, op="touch", num_clients=8, items_per_client=10)
        assert a.iops == pytest.approx(b.iops)

    @pytest.mark.parametrize("name", ["cephfs", "gluster", "lustre-d1", "lustre-d2", "indexfs"])
    def test_baselines_run_all_ops(self, name):
        for op in ("touch", "mkdir", "file-stat", "rm"):
            r = run_throughput(name, 2, op=op, num_clients=4, items_per_client=6)
            assert r.total_ops == 24, (name, op)


class TestReport:
    def test_format_table_renders_all_cells(self):
        rows = {"A": {1: 10.0, 2: 20.0}, "B": {1: 5.0}}
        out = format_table("t", "sys", [1, 2], rows)
        assert "A" in out and "B" in out
        assert "10" in out and "—" in out  # missing cell renders as em dash

    def test_normalize(self):
        rows = {"base": {1: 10.0}, "x": {1: 30.0}}
        norm = normalize(rows, "base")
        assert norm["x"][1] == pytest.approx(3.0)
        assert norm["base"][1] == pytest.approx(1.0)


class TestTrace:
    def test_default_has_zero_renames(self):
        gen = TraceGenerator(num_ops=20000)
        assert gen.rename_share() == 0.0

    def test_rename_fraction_respected(self):
        gen = TraceGenerator(num_ops=50000, rename_fraction=0.01)
        share = gen.rename_share()
        assert 0.005 < share < 0.02

    def test_mix_sums_to_metadata_heavy(self):
        hist = TraceGenerator(num_ops=30000).op_histogram()
        assert hist["stat"] > hist["write"]

    def test_paths_well_formed(self):
        gen = TraceGenerator(num_ops=500)
        from repro.common import pathutil

        for op in gen.generate():
            assert pathutil.normalize(op.path) == op.path
