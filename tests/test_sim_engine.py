"""Tests for the RPC engines: latency accounting, queueing, errors."""

import pytest

from repro.common.errors import NoEntry
from repro.kv import HashStore
from repro.sim import Cluster, CostModel, DirectEngine, EventEngine, Parallel, Rpc, Sleep


class EchoHandler:
    """Toy server: op_echo returns its argument; op_kv_* hit a metered store."""

    def __init__(self):
        self.store = None
        self.calls = 0

    def attach_meter(self, meter):
        self.store = HashStore(meter=meter)

    def op_echo(self, x):
        self.calls += 1
        return x

    def op_put(self, k, v):
        self.store.put(k, v)

    def op_get(self, k):
        v = self.store.get(k)
        if v is None:
            raise NoEntry(k.decode())
        return v

    def op_charge(self, us):
        self.store.meter.charge_us(us)
        return "charged"


def make_cluster(n=2, **cost_kw):
    cost = CostModel(**cost_kw)
    cluster = Cluster(cost)
    handlers = [EchoHandler() for _ in range(n)]
    for i, h in enumerate(handlers):
        cluster.add(f"s{i}", h)
    return cluster, cost, handlers


def g_single(server="s0", x=42):
    result = yield Rpc(server, "echo", (x,))
    return result


def g_two_calls():
    a = yield Rpc("s0", "echo", (1,))
    b = yield Rpc("s1", "echo", (2,))
    return a + b


def g_parallel():
    results = yield Parallel([Rpc("s0", "charge", (100,)), Rpc("s1", "charge", (300,))])
    return results


def g_catch_error():
    try:
        yield Rpc("s0", "get", (b"missing",))
    except NoEntry:
        return "caught"
    return "not caught"


@pytest.fixture(params=["direct", "event"])
def engine_factory(request):
    def make(**cost_kw):
        cluster, cost, handlers = make_cluster(**cost_kw)
        if request.param == "direct":
            return DirectEngine(cluster, cost), handlers
        return EventEngine(cluster, cost), handlers

    return make


class TestBothEngines:
    def test_returns_generator_value(self, engine_factory):
        eng, handlers = engine_factory()
        assert eng.run(g_single()) == 42
        assert handlers[0].calls == 1

    def test_rpc_charges_rtt_and_service(self, engine_factory):
        eng, _ = engine_factory(rtt_us=100.0, server_overhead_us=2.0)
        eng.run(g_single())
        # one RPC: full RTT + server overhead (echo does no KV work)
        assert eng.now == pytest.approx(102.0)

    def test_connection_switch_cost(self, engine_factory):
        eng, _ = engine_factory(rtt_us=100.0, server_overhead_us=0.0, conn_switch_us=50.0)
        eng.run(g_two_calls())
        # two RPCs to different servers: second one pays the switch cost
        assert eng.now == pytest.approx(100 + 50 + 100)

    def test_no_switch_cost_same_server(self, engine_factory):
        eng, _ = engine_factory(rtt_us=100.0, server_overhead_us=0.0, conn_switch_us=50.0)

        def g():
            yield Rpc("s0", "echo", (1,))
            yield Rpc("s0", "echo", (2,))

        eng.run(g())
        assert eng.now == pytest.approx(200.0)

    def test_sleep_advances_clock(self, engine_factory):
        eng, _ = engine_factory()

        def g():
            yield Sleep(500.0)

        eng.run(g())
        assert eng.now == pytest.approx(500.0)

    def test_parallel_latency_is_slowest_branch(self, engine_factory):
        eng, _ = engine_factory(rtt_us=100.0, server_overhead_us=0.0)
        results = eng.run(g_parallel())
        assert results == ["charged", "charged"]
        # slowest branch: 100us RTT + 300us service
        assert eng.now == pytest.approx(400.0)

    def test_fs_errors_propagate_into_generator(self, engine_factory):
        eng, _ = engine_factory()
        assert eng.run(g_catch_error()) == "caught"

    def test_uncaught_fs_error_raises(self, engine_factory):
        eng, _ = engine_factory()

        def g():
            yield Rpc("s0", "get", (b"missing",))

        with pytest.raises(NoEntry):
            eng.run(g())

    def test_metered_service_time(self, engine_factory):
        eng, _ = engine_factory(rtt_us=0.0, server_overhead_us=0.0)

        def g():
            yield Rpc("s0", "charge", (123.0,))

        eng.run(g())
        assert eng.now == pytest.approx(123.0)

    def test_payload_transfer_time(self, engine_factory):
        eng, _ = engine_factory(rtt_us=0.0, server_overhead_us=0.0, bandwidth_bpus=1.0)

        def g():
            yield Rpc("s0", "echo", (1,), send_bytes=500, recv_bytes=300)

        eng.run(g())
        assert eng.now == pytest.approx(800.0)


class TestEventEngineQueueing:
    def test_fifo_contention_serializes_service(self):
        cluster, cost, handlers = make_cluster(rtt_us=0.0, server_overhead_us=0.0)
        eng = EventEngine(cluster, cost)
        done_times = []

        def client():
            yield Rpc("s0", "charge", (100.0,))

        for _ in range(3):
            eng.spawn(client(), lambda v, e: done_times.append(eng.now))
        eng.sim.run()
        # all three arrive together; the single server processes them FIFO
        assert done_times == [pytest.approx(100.0), pytest.approx(200.0), pytest.approx(300.0)]

    def test_two_servers_process_in_parallel(self):
        cluster, cost, handlers = make_cluster(n=2, rtt_us=0.0, server_overhead_us=0.0)
        eng = EventEngine(cluster, cost)
        done = []

        def client(server):
            yield Rpc(server, "charge", (100.0,))

        eng.spawn(client("s0"), lambda v, e: done.append(("s0", eng.now)))
        eng.spawn(client("s1"), lambda v, e: done.append(("s1", eng.now)))
        eng.sim.run()
        assert [t for _, t in done] == [pytest.approx(100.0), pytest.approx(100.0)]

    def test_closed_loop_throughput_saturates_at_service_rate(self):
        # 10 clients hammer one server with 10us ops and zero network: the
        # server is the bottleneck, so ~1 op per 10us completes.
        cluster, cost, _ = make_cluster(rtt_us=0.0, server_overhead_us=0.0, conn_switch_us=0.0)
        eng = EventEngine(cluster, cost)
        completed = [0]
        horizon = 100_000.0

        def client_loop():
            while eng.now < horizon:
                yield Rpc("s0", "charge", (10.0,))
                completed[0] += 1

        for _ in range(10):
            eng.spawn(client_loop())
        eng.sim.run(until=horizon * 1.2)
        rate_per_us = completed[0] / horizon
        assert rate_per_us == pytest.approx(0.1, rel=0.05)

    def test_server_utilization_accounting(self):
        cluster, cost, _ = make_cluster(rtt_us=0.0, server_overhead_us=0.0)
        eng = EventEngine(cluster, cost)
        eng.run(iter(g_single()))
        node = cluster["s0"]
        assert node.requests_served == 1

    def test_run_reraises_errors(self):
        cluster, cost, _ = make_cluster()
        eng = EventEngine(cluster, cost)

        def g():
            yield Rpc("s0", "get", (b"nope",))

        with pytest.raises(NoEntry):
            eng.run(g())


class TestClusterRegistry:
    def test_duplicate_name_rejected(self):
        cluster, _, _ = make_cluster()
        with pytest.raises(ValueError):
            cluster.add("s0", EchoHandler())

    def test_unknown_op_raises(self):
        cluster, cost, _ = make_cluster()
        eng = DirectEngine(cluster, cost)

        def g():
            yield Rpc("s0", "nonexistent", ())

        with pytest.raises(AttributeError):
            eng.run(g())

    def test_names_and_contains(self):
        cluster, _, _ = make_cluster(n=3)
        assert cluster.names() == ["s0", "s1", "s2"]
        assert "s1" in cluster
        assert "zz" not in cluster
