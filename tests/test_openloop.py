"""Open-loop source: arrival determinism, admission accounting, packs.

The load-bearing properties (ISSUE 9 satellites): arrival sequences are
a pure function of (spec, horizon, seed) — identical across runs *and*
shard counts; the admission queue is bounded and shed arrivals are
counted but excluded from goodput; the conservation identity holds at
drain; and the telemetry marks mirror the driver counters exactly.
"""

import dataclasses
import json

import pytest

from repro.harness import run_openloop
from repro.harness.openloop import PACK_NAMES, get_pack
from repro.obs.telemetry import TelemetrySink
from repro.sim import OpenLoopSource, Simulator, TenantSpec, arrival_times


def _doc(res) -> str:
    """Canonical byte encoding of a run result (determinism pin)."""
    return json.dumps(dataclasses.asdict(res), sort_keys=True)


# ---------------------------------------------------------------------------
# spec validation and arrival processes
# ---------------------------------------------------------------------------

def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("t", 1000.0, process="weibull")
    with pytest.raises(ValueError):
        TenantSpec("t", 0.0)
    with pytest.raises(ValueError):
        TenantSpec("t", 1000.0, sessions=0)
    with pytest.raises(ValueError):
        TenantSpec("t", 1000.0, queue_bound=-1)
    with pytest.raises(ValueError):
        TenantSpec("t", 1000.0, process="diurnal", diurnal_amplitude=1.0)
    spec = TenantSpec("t", 1000.0, sessions=4, queue_bound=7)
    doubled = spec.scaled(2.0)
    assert doubled.rate == 2000.0
    assert (doubled.name, doubled.sessions, doubled.queue_bound) == ("t", 4, 7)


def test_arrival_times_pure_and_calibrated():
    spec = TenantSpec("t", 50_000.0)
    a = arrival_times(spec, 200_000.0, seed=7)
    b = arrival_times(spec, 200_000.0, seed=7)
    assert a == b  # pure function of (spec, horizon, seed)
    assert a != arrival_times(spec, 200_000.0, seed=8)
    assert a == sorted(a)
    assert all(0.0 <= t < 200_000.0 for t in a)
    # 50k ops/s over 0.2s -> ~10k arrivals; Poisson sd ~100
    assert 9_500 < len(a) < 10_500
    assert arrival_times(spec, 0.0, seed=7) == []


def test_arrival_times_burst_and_diurnal_processes():
    burst = TenantSpec("b", 40_000.0, process="burst", burst_size=8,
                       burst_spacing_us=25.0)
    times = arrival_times(burst, 500_000.0, seed=3)
    assert times == sorted(times)
    # mean rate preserved: 40k ops/s over 0.5s -> ~20k arrivals
    assert 15_000 < len(times) < 25_000
    diurnal = TenantSpec("d", 40_000.0, process="diurnal",
                         diurnal_amplitude=0.8)
    dt = arrival_times(diurnal, 500_000.0, seed=3)
    assert dt == sorted(dt)
    assert 17_000 < len(dt) < 23_000


def test_per_tenant_streams_are_independent():
    a = arrival_times(TenantSpec("alpha", 20_000.0), 100_000.0, seed=0)
    b = arrival_times(TenantSpec("beta", 20_000.0), 100_000.0, seed=0)
    assert a != b  # name folded into the per-tenant stream


def test_source_rejects_bad_tenant_sets():
    with pytest.raises(ValueError):
        OpenLoopSource(None, [], None, None)
    dup = [TenantSpec("x", 1000.0), TenantSpec("x", 2000.0)]
    with pytest.raises(ValueError):
        OpenLoopSource(None, dup, None, None)


# ---------------------------------------------------------------------------
# simulator support: window-boundary alignment
# ---------------------------------------------------------------------------

def test_advance_to_moves_clock_with_empty_schedule():
    sim = Simulator()
    sim.advance_to(1024.0)
    assert sim.now == 1024.0
    with pytest.raises(ValueError):
        sim.advance_to(512.0)
    # scheduling exactly at the advanced-to instant is a ready entry
    fired = []
    sim.at(1024.0, fired.append, 1)
    sim.run()
    assert fired == [1] and sim.now == 1024.0


def test_advance_to_drains_intermediate_events():
    sim = Simulator()
    fired = []
    sim.at(100.0, fired.append, "a")
    sim.at(900.0, fired.append, "b")
    sim.advance_to(500.0)
    assert fired == ["a"] and sim.now == 500.0
    sim.run()
    assert fired == ["a", "b"]


# ---------------------------------------------------------------------------
# end-to-end determinism (the satellite-1 pin)
# ---------------------------------------------------------------------------

def test_run_openloop_bit_identical_across_runs_and_shards():
    kw = dict(pack="dl-pipeline", rate=15_000.0, horizon_us=30_000.0, seed=5)
    a = run_openloop("locofs-c", 2, telemetry=TelemetrySink(), **kw)
    b = run_openloop("locofs-c", 2, telemetry=TelemetrySink(), **kw)
    sharded = run_openloop("locofs-c", 2, telemetry=TelemetrySink(),
                           shards=2, **kw)
    assert _doc(a) == _doc(b) == _doc(sharded)
    assert a.offered > 0 and a.conservation_ok


def test_run_openloop_seed_changes_the_arrivals():
    kw = dict(pack="dl-pipeline", rate=15_000.0, horizon_us=30_000.0)
    a = run_openloop("locofs-c", 2, telemetry=TelemetrySink(), seed=1, **kw)
    b = run_openloop("locofs-c", 2, telemetry=TelemetrySink(), seed=2, **kw)
    assert a.offered != b.offered or _doc(a) != _doc(b)


# ---------------------------------------------------------------------------
# overload accounting
# ---------------------------------------------------------------------------

def test_bounded_queue_sheds_and_conserves():
    res = run_openloop("locofs-c", 1, pack="container-churn", rate=150_000.0,
                       horizon_us=30_000.0, queue_bound=16,
                       telemetry=TelemetrySink())
    assert res.shed > 0
    assert res.queue_peak <= 16 * res.num_tenants
    assert res.conservation_ok
    # at drain: every offered arrival is accounted for exactly once
    assert res.offered == res.shed + res.abandoned + res.completed + res.errors
    for tenant in res.per_tenant.values():
        assert tenant["offered"] == (tenant["shed"] + tenant["abandoned"]
                                     + tenant["completed"] + tenant["errors"])
        assert tenant["in_flight"] == 0
        assert tenant["queue_peak"] <= 16


def test_shed_excluded_from_goodput_but_counted():
    res = run_openloop("locofs-c", 1, pack="container-churn", rate=150_000.0,
                       horizon_us=30_000.0, queue_bound=16,
                       telemetry=TelemetrySink())
    assert res.goodput_iops < res.offered_iops
    assert res.completed_in_horizon <= res.offered - res.shed
    # goodput derives from in-horizon completions only
    assert res.goodput_iops == pytest.approx(
        res.completed_in_horizon / (res.horizon_us / 1e6))


def test_abandonment_under_impatience():
    res = run_openloop("locofs-c", 1, pack="container-churn", rate=150_000.0,
                       horizon_us=30_000.0, queue_bound=64,
                       abandon_after_us=200.0, telemetry=TelemetrySink())
    assert res.abandoned > 0
    assert res.conservation_ok


def test_sojourn_latency_includes_queue_wait():
    quiet = run_openloop("locofs-c", 2, pack="dl-pipeline", rate=5_000.0,
                         horizon_us=30_000.0, telemetry=TelemetrySink())
    slammed = run_openloop("locofs-c", 2, pack="dl-pipeline", rate=200_000.0,
                           horizon_us=30_000.0, telemetry=TelemetrySink())
    assert slammed.wait_mean_us > quiet.wait_mean_us
    q = quiet.aggregate_quantiles()
    s = slammed.aggregate_quantiles()
    assert s["p99"] > 2.0 * q["p99"]  # queueing delay inside the sojourn


# ---------------------------------------------------------------------------
# telemetry marks mirror the driver counters (satellite 2)
# ---------------------------------------------------------------------------

def test_marks_match_counters_and_series():
    sink = TelemetrySink()
    res = run_openloop("locofs-c", 1, pack="container-churn", rate=150_000.0,
                       horizon_us=30_000.0, queue_bound=16, telemetry=sink)
    marks = sink.snapshot()["totals"]["marks"]
    assert marks["client.offered"] == res.offered
    assert marks["client.shed"] == res.shed
    series = sink.mark_series("offered.")
    assert set(series) == {f"offered.container-churn-{i}" for i in range(2)}
    assert sum(sum(s) for s in series.values()) == res.offered
    lengths = {len(s) for s in series.values()}
    assert len(lengths) == 1  # zero-filled to the common window count


def test_offered_rate_counter_track_in_perfetto_export():
    from repro.obs.export import chrome_trace_events
    from repro.obs.tracer import Tracer

    sink = TelemetrySink()
    run_openloop("locofs-c", 1, pack="checkpoint-stampede", rate=20_000.0,
                 horizon_us=20_000.0, telemetry=sink)
    offered = {"window_us": sink.window_us,
               "series": sink.mark_series("offered.")}
    events = chrome_trace_events(Tracer(), offered=offered)
    tracks = {e["name"] for e in events if e["ph"] == "C"}
    assert any(t.startswith("offered.checkpoint-stampede") for t in tracks)
    rates = [e["args"]["ops_per_s"] for e in events if e["ph"] == "C"]
    assert max(rates) > 0.0
    # counter tracks hang off the clients process group
    metas = [e["args"]["name"] for e in events if e["ph"] == "M"]
    assert "clients" in metas


# ---------------------------------------------------------------------------
# scenario packs
# ---------------------------------------------------------------------------

def test_get_pack_names_and_unknown():
    for name in PACK_NAMES:
        assert get_pack(name).name == name
    with pytest.raises(ValueError):
        get_pack("video-transcode")


def test_checkpoint_stampede_uses_burst_arrivals():
    pack = get_pack("checkpoint-stampede")
    [spec] = pack.tenants(10_000.0)[:1]
    assert spec.process == "burst"


def test_every_pack_runs_clean():
    for name in PACK_NAMES:
        res = run_openloop("locofs-b", 2, pack=name, rate=10_000.0,
                           horizon_us=20_000.0, telemetry=TelemetrySink())
        assert res.completed_in_horizon > 0, name
        assert res.errors == 0, name
        assert res.conservation_ok, name
        assert res.latency_us, name
