"""Crash-recovery and failure-injection tests for the metadata servers.

A LocoFS built with ``data_dir`` write-ahead-logs every metadata mutation;
"crashing" is modeled by abandoning the deployment object and constructing
a fresh one over the same directory.  Recovery must restore the namespace,
the DMS's in-memory mirror, and the uuid allocators (no reuse), and the
recovered state must pass fsck.
"""

import pytest

from repro.common.config import CacheConfig, ClusterConfig
from repro.common.errors import NoEntry
from repro.core.dms import DirectoryMetadataServer
from repro.core.fms import FileMetadataServer
from repro.core.fs import LocoFS
from repro.core.fsck import check
from repro.common.types import ROOT_CRED


def make_fs(tmp_path, n=2):
    return LocoFS(ClusterConfig(num_metadata_servers=n), data_dir=str(tmp_path / "meta"))


class TestLocoFSRestart:
    def test_namespace_survives_restart(self, tmp_path):
        fs = make_fs(tmp_path)
        c = fs.client()
        c.mkdir("/proj")
        c.mkdir("/proj/a")
        for i in range(10):
            c.create(f"/proj/f{i}")
        c.chmod("/proj/f0", 0o600)
        fs.close()

        fs2 = make_fs(tmp_path)
        c2 = fs2.client()
        assert c2.stat_dir("/proj/a").is_dir
        assert c2.stat_file("/proj/f3").is_file
        assert c2.stat_file("/proj/f0").st_mode & 0o7777 == 0o600
        assert [e.name for e in c2.readdir("/proj")] == (
            ["a"] + [f"f{i}" for i in range(10)]
        )

    def test_recovered_state_passes_fsck(self, tmp_path):
        fs = make_fs(tmp_path, n=3)
        c = fs.client()
        c.mkdir("/a")
        c.mkdir("/a/b")
        for i in range(20):
            c.create(f"/a/f{i}")
        c.rename("/a/f0", "/a/g0")
        c.rename("/a", "/z")
        fs.close()
        fs2 = make_fs(tmp_path, n=3)
        report = check(fs2)
        assert report.clean, report.errors
        assert report.files == 20

    def test_deletions_survive_restart(self, tmp_path):
        fs = make_fs(tmp_path)
        c = fs.client()
        c.mkdir("/d")
        c.create("/d/doomed")
        c.unlink("/d/doomed")
        c.rmdir("/d")
        fs.close()
        fs2 = make_fs(tmp_path)
        c2 = fs2.client()
        with pytest.raises(NoEntry):
            c2.stat_dir("/d")
        with pytest.raises(NoEntry):
            c2.stat_file("/d/doomed")

    def test_no_uuid_reuse_after_restart(self, tmp_path):
        fs = make_fs(tmp_path)
        c = fs.client()
        c.mkdir("/d")
        uuids = set()
        for i in range(5):
            c.create(f"/d/f{i}")
            uuids.add(c.stat_file(f"/d/f{i}").st_uuid)
        fs.close()
        fs2 = make_fs(tmp_path)
        c2 = fs2.client()
        for i in range(5, 10):
            c2.create(f"/d/f{i}")
            uuids.add(c2.stat_file(f"/d/f{i}").st_uuid)
        assert len(uuids) == 10  # every uuid distinct across the crash

    def test_restart_then_continue_operating(self, tmp_path):
        fs = make_fs(tmp_path)
        c = fs.client()
        c.mkdir("/d")
        fs.close()
        fs2 = make_fs(tmp_path)
        c2 = fs2.client()
        c2.mkdir("/d/sub")  # parent resolution + ACL from recovered mirror
        c2.create("/d/sub/file")
        assert check(fs2).clean

    def test_without_data_dir_nothing_persists(self, tmp_path):
        fs = LocoFS(ClusterConfig(num_metadata_servers=1))
        fs.client().mkdir("/ephemeral")
        fs.close()
        fs2 = LocoFS(ClusterConfig(num_metadata_servers=1))
        with pytest.raises(NoEntry):
            fs2.client().stat_dir("/ephemeral")


class TestServerLevelRecovery:
    def test_dms_mirror_rebuilt(self, tmp_path):
        wal = str(tmp_path / "dms.wal")
        dms = DirectoryMetadataServer(wal_path=wal)
        dms.op_mkdir("/a", 0o700, ROOT_CRED, 1.0)
        dms.op_mkdir("/a/b", 0o755, ROOT_CRED, 2.0)
        dms.store.close()
        dms2 = DirectoryMetadataServer(wal_path=wal)
        assert set(dms2._meta) == {"/", "/a", "/a/b"}
        mode, uid, gid, uuid = dms2._meta["/a"]
        assert mode & 0o7777 == 0o700
        assert dms2.num_directories() == 3

    def test_dms_hash_backend_recovery(self, tmp_path):
        wal = str(tmp_path / "dms.wal")
        dms = DirectoryMetadataServer(backend="hash", wal_path=wal)
        dms.op_mkdir("/x", 0o755, ROOT_CRED, 0.0)
        dms.store.close()
        dms2 = DirectoryMetadataServer(backend="hash", wal_path=wal)
        assert dms2.op_exists("/x")

    def test_fms_allocator_skips_reserved_range(self, tmp_path):
        wal = str(tmp_path / "fms.wal")
        fms = FileMetadataServer(sid=1, wal_path=wal)
        u1 = fms.op_create(0, "f1", 0o644, ROOT_CRED, 0.0)
        fms.store.close()
        fms2 = FileMetadataServer(sid=1, wal_path=wal)
        u2 = fms2.op_create(0, "f2", 0o644, ROOT_CRED, 0.0)
        assert u2 > u1

    def test_fms_files_survive(self, tmp_path):
        wal = str(tmp_path / "fms.wal")
        fms = FileMetadataServer(sid=1, wal_path=wal)
        fms.op_create(7, "data.bin", 0o644, ROOT_CRED, 0.0)
        fms.op_truncate(7, "data.bin", 4242, 1.0)
        fms.store.close()
        fms2 = FileMetadataServer(sid=1, wal_path=wal)
        attrs = fms2.op_getattr(7, "data.bin")
        assert attrs["size"] == 4242

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        wal = str(tmp_path / "dms.wal")
        dms = DirectoryMetadataServer(wal_path=wal)
        dms.op_mkdir("/kept", 0o755, ROOT_CRED, 0.0)
        dms.store.close()
        # simulate a torn write at the tail of the log
        with open(wal, "ab") as fh:
            fh.write(b"\x30\x00\x00\x00garbage-partial-record")
        dms2 = DirectoryMetadataServer(wal_path=wal)
        assert dms2.op_exists("/kept")
