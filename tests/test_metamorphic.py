"""Metamorphic properties across configurations that must not change results.

1. Engine equivalence: for a single sequential client there is no queueing,
   so the Direct engine's virtual clock and the event engine's simulator
   must agree *exactly* on every operation's timing.
2. Cache transparency: the client directory cache changes timing, never
   semantics — LocoFS-C and LocoFS-NC must produce byte-identical
   namespaces for any workload.
3. Decoupling transparency: LocoFS-DF and LocoFS-CF store the same logical
   metadata; every stat must agree.
"""

import pytest

from repro.common.config import CacheConfig, ClusterConfig
from repro.core.fs import LocoFS


WORKLOAD = [
    ("mkdir", ("/a",)),
    ("mkdir", ("/a/b",)),
    ("create", ("/a/f1",)),
    ("create", ("/a/b/f2",)),
    ("write", ("/a/f1", 0, b"x" * 5000)),
    ("chmod", ("/a/f1", 0o600)),
    ("stat_file", ("/a/f1",)),
    ("read", ("/a/f1", 100, 200)),
    ("readdir", ("/a",)),
    ("rename", ("/a/f1", "/a/b/g1")),
    ("unlink", ("/a/b/f2",)),
    ("stat_dir", ("/a/b",)),
]


def run_workload(fs):
    c = fs.client()
    for op, args in WORKLOAD:
        getattr(c, op)(*args)
    return fs, c


class TestEngineEquivalence:
    @pytest.mark.parametrize("num_servers", [1, 4])
    def test_direct_and_event_clocks_agree(self, num_servers):
        direct, _ = run_workload(
            LocoFS(ClusterConfig(num_metadata_servers=num_servers)))
        event, _ = run_workload(
            LocoFS(ClusterConfig(num_metadata_servers=num_servers),
                   engine_kind="event"))
        assert direct.engine.now == pytest.approx(event.engine.now, rel=1e-9)

    def test_engines_agree_for_baseline_too(self):
        from repro.baselines import LustreSystem

        def run(kind):
            sys_ = LustreSystem(num_metadata_servers=2, engine_kind=kind)
            c = sys_.client()
            c.mkdir("/d")
            c.create("/d/f")
            c.stat_file("/d/f")
            c.unlink("/d/f")
            now = sys_.engine.now
            sys_.close()
            return now

        assert run("direct") == pytest.approx(run("event"), rel=1e-9)


def namespace_snapshot(fs):
    """(dirs, files-with-content) as stored server-side."""
    dirs = sorted(fs.dms._meta)
    files = []
    for fms in fs.fms:
        for k, v in sorted(fms.store.items()):
            if k.startswith((b"A:", b"C:", b"F:")):
                files.append((k[2:], k[:1]))
    return dirs, sorted(files)


class TestConfigTransparency:
    def test_cache_does_not_change_the_namespace(self):
        c_fs, _ = run_workload(LocoFS(ClusterConfig(num_metadata_servers=3)))
        nc_fs, _ = run_workload(LocoFS(ClusterConfig(
            num_metadata_servers=3, cache=CacheConfig(enabled=False))))
        assert namespace_snapshot(c_fs) == namespace_snapshot(nc_fs)

    def test_cache_only_removes_dms_traffic(self):
        c_fs, _ = run_workload(LocoFS(ClusterConfig(num_metadata_servers=3)))
        nc_fs, _ = run_workload(LocoFS(ClusterConfig(
            num_metadata_servers=3, cache=CacheConfig(enabled=False))))
        assert (nc_fs.cluster["dms"].requests_served
                > c_fs.cluster["dms"].requests_served)
        # FMS traffic is identical: the cache never changes file ops
        for name in c_fs.fms_names:
            assert (c_fs.cluster[name].requests_served
                    == nc_fs.cluster[name].requests_served)

    def test_decoupling_does_not_change_visible_metadata(self):
        df, df_client = run_workload(LocoFS(ClusterConfig(num_metadata_servers=2)))
        cf, cf_client = run_workload(LocoFS(ClusterConfig(
            num_metadata_servers=2, decoupled_file_metadata=False)))
        for path in ("/a/b/g1",):
            a = df_client.stat_file(path)
            b = cf_client.stat_file(path)
            assert (a.st_mode, a.st_size, a.st_uid, a.st_gid) == (
                b.st_mode, b.st_size, b.st_uid, b.st_gid)
        assert df_client.read("/a/b/g1", 0, 50) == cf_client.read("/a/b/g1", 0, 50)
