"""Scale smoke tests: thousands of objects through the real code paths."""

import pytest

from repro.common.config import ClusterConfig
from repro.core.fs import LocoFS
from repro.core.fsck import check


@pytest.mark.parametrize("num_servers", [1, 8])
def test_ten_thousand_files(num_servers):
    fs = LocoFS(ClusterConfig(num_metadata_servers=num_servers))
    c = fs.client()
    n_dirs, files_per_dir = 20, 500
    for d in range(n_dirs):
        c.mkdir(f"/d{d:02d}")
        for f in range(files_per_dir):
            c.create(f"/d{d:02d}/f{f:04d}")
    assert fs.total_files() == n_dirs * files_per_dir
    assert fs.total_directories() == n_dirs + 1
    # spot checks across the namespace
    assert c.stat_file("/d07/f0123").is_file
    assert len(c.readdir("/d19")) == files_per_dir
    # cleanup of one full directory
    for f in range(files_per_dir):
        c.unlink(f"/d00/f{f:04d}")
    c.rmdir("/d00")
    assert fs.total_directories() == n_dirs
    report = check(fs)
    assert report.clean, report.errors[:3]


def test_wide_rename_of_big_subtree():
    fs = LocoFS(ClusterConfig(num_metadata_servers=4))
    c = fs.client()
    c.mkdir("/proj")
    for d in range(50):
        c.mkdir(f"/proj/sub{d:03d}")
        c.create(f"/proj/sub{d:03d}/data")
    moved = fs.dms.op_rename("/proj", "/archive", c.cred)
    assert moved == 50
    assert c.stat_file("/archive/sub049/data").is_file
    assert check(fs).clean


def test_deep_tree_32_levels():
    fs = LocoFS(ClusterConfig(num_metadata_servers=2))
    c = fs.client()
    path = ""
    for i in range(32):
        path += f"/l{i}"
        c.mkdir(path)
    c.create(path + "/leaf")
    c.write(path + "/leaf", 0, b"bottom")
    assert c.read(path + "/leaf", 0, 6) == b"bottom"
    assert check(fs).clean


def test_many_small_writes_one_file():
    fs = LocoFS(ClusterConfig(num_metadata_servers=1))
    c = fs.client()
    c.create("/log")
    for i in range(300):
        c.write("/log", i * 10, f"{i:09d}\n".encode())
    assert c.stat_file("/log").st_size == 3000
    assert c.read("/log", 2990, 10) == b"000000299\n"
