"""Sharded deterministic execution (repro.sim.shard, DESIGN §10).

The determinism goldens pin bit-identical virtual time across shard
counts for every registered system; these tests cover the machinery
itself — partitioning, the control plane, telemetry split/merge, error
propagation, unsupported-feature rejection, and teardown.
"""

import json

import pytest

from repro.common.config import BatchConfig, ClusterConfig
from repro.common.errors import Exists
from repro.core.fs import LocoFS
from repro.harness import run_throughput
from repro.obs import TelemetrySink
from repro.sim.shard import ShardGroup, shard_system


def sharded_fs(shards, num_servers=4, engine_kind="direct", **batch_kw):
    batch = BatchConfig(enabled=True, **batch_kw) if batch_kw else BatchConfig()
    cfg = ClusterConfig(num_metadata_servers=num_servers, batch=batch)
    return shard_system(LocoFS(cfg, engine_kind=engine_kind), shards)


class TestShardGroup:
    def test_shards_one_is_a_no_op(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        assert shard_system(fs, 1) is fs
        assert not hasattr(fs, "shard_group")

    def test_group_requires_at_least_two_shards(self):
        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        with pytest.raises(ValueError):
            ShardGroup(fs.cluster, fs.engine, 1)

    def test_round_robin_assignment_and_lookahead(self):
        fs = sharded_fs(2, num_servers=3)
        group = fs.shard_group
        try:
            names = list(group.assignment)
            assert [group.assignment[n] for n in names] == \
                [i % 2 for i in range(len(names))]
            assert group.lookahead_us == fs.cluster.cost.rtt_us / 2.0
            # every node was swapped for a proxy on the matching shard
            for name in names:
                node = fs.cluster[name]
                assert node.remote
                assert node._wid == group.assignment[name]
        finally:
            fs.close()

    def test_ops_run_in_workers_and_driver_state_is_stale(self):
        fs = sharded_fs(2)
        try:
            c = fs.client()
            c.mkdir("/d")
            for n in range(8):
                c.create(f"/d/f{n}")
            group = fs.shard_group
            live = sum(group.call(name, "num_files_fast")
                       for name in fs.fms_names)
            assert live == 8
            # the driver's handler objects are the pre-fork copies
            assert fs.total_files_fast() == 0
        finally:
            fs.close()

    def test_fs_errors_propagate_from_workers(self):
        fs = sharded_fs(2)
        try:
            c = fs.client()
            c.mkdir("/d")
            with pytest.raises(Exists):
                c.mkdir("/d")
        finally:
            fs.close()

    def test_error_path_clock_matches_single_process(self):
        def clock(shards):
            fs = sharded_fs(shards) if shards > 1 else \
                LocoFS(ClusterConfig(num_metadata_servers=4))
            try:
                c = fs.client()
                c.mkdir("/d")
                with pytest.raises(Exists):
                    c.mkdir("/d")
                c.create("/d/f")
                return fs.engine.now
            finally:
                fs.close()

        assert clock(2) == clock(1)

    def test_close_reaps_workers_and_is_idempotent(self):
        fs = sharded_fs(2)
        procs = fs.shard_group._procs
        assert all(p.is_alive() for p in procs)
        fs.close()
        fs.close()
        assert not any(p.is_alive() for p in procs)


class TestUnsupportedUnderSharding:
    def test_pre_attached_tracer_rejected(self):
        from repro.obs import Tracer

        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        fs.engine.attach_observability(tracer=Tracer())
        with pytest.raises(RuntimeError, match="telemetry only"):
            ShardGroup(fs.cluster, fs.engine, 2)

    def test_pre_attached_metrics_rejected(self):
        from repro.obs import MetricsRegistry

        fs = LocoFS(ClusterConfig(num_metadata_servers=2))
        fs.engine.attach_observability(metrics=MetricsRegistry())
        with pytest.raises(RuntimeError, match="telemetry only"):
            ShardGroup(fs.cluster, fs.engine, 2)

    def test_late_tracer_attachment_rejected_at_dispatch(self):
        from repro.obs import Tracer

        fs = sharded_fs(2)
        try:
            c = fs.client()
            c.mkdir("/d")  # fine: telemetry-only contract holds
            fs.engine.attach_observability(tracer=Tracer())
            with pytest.raises(RuntimeError, match="telemetry only"):
                c.mkdir("/e")
        finally:
            fs.close()


class TestTelemetryMerge:
    @staticmethod
    def _feed(sink, lo, hi, server="fms0"):
        for i in range(lo, hi):
            t = 100.0 * i
            sink.op_complete("client.create", t, t + 40.0)
            sink.rpc_complete(server, t, t + 5.0, 30.0, depth=i % 3)
            if i % 7 == 0:
                sink.mark("retry", t)
            if i % 11 == 0:
                sink.op_complete("client.stat", t, t + 9.0, error="Gone")

    def test_split_feed_merges_to_the_single_sink(self):
        whole = TelemetrySink()
        self._feed(whole, 0, 200)
        a = TelemetrySink()
        b = TelemetrySink()
        self._feed(a, 0, 120)
        self._feed(b, 120, 200)
        assert a.merge(b) is a
        assert json.dumps(a.snapshot(), sort_keys=True) == \
            json.dumps(whole.snapshot(), sort_keys=True)
        assert a.total_ops == whole.total_ops
        assert a.total_errors == whole.total_errors

    def test_merge_aligns_power_of_two_window_widths(self):
        wide = TelemetrySink(window_us=1024.0)
        narrow = TelemetrySink(window_us=256.0)
        self._feed(wide, 0, 50)
        self._feed(narrow, 50, 80, server="fms1")
        merged = wide.merge(narrow)
        assert merged.window_us == 1024.0
        assert merged.total_ops > 0
        assert set(merged.server_names()) == {"fms0", "fms1"}

    def test_merge_rejects_unaligned_window_widths(self):
        a = TelemetrySink(window_us=256.0)
        b = TelemetrySink(window_us=384.0)
        self._feed(a, 0, 4)
        self._feed(b, 0, 4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_stays_within_max_windows(self):
        a = TelemetrySink(window_us=256.0, max_windows=4)
        b = TelemetrySink(window_us=256.0, max_windows=4)
        self._feed(a, 0, 40)
        self._feed(b, 40, 200)
        merged = a.merge(b)
        assert merged.n_windows <= 4


class TestShardedTelemetryEquivalence:
    @staticmethod
    def _snapshot(shards):
        sink = TelemetrySink()
        run_throughput("locofs-c", 4, op="touch", items_per_client=6,
                       client_scale=0.2, telemetry=sink, shards=shards)
        return json.dumps(sink.snapshot(), sort_keys=True)

    def test_merged_worker_sinks_equal_single_process_sink(self):
        assert self._snapshot(2) == self._snapshot(1)

    def test_batched_system_telemetry_equivalent(self):
        sinks = []
        for shards in (1, 3):
            sink = TelemetrySink()
            run_throughput("locofs-b", 4, op="touch", items_per_client=6,
                           client_scale=0.2, telemetry=sink, shards=shards)
            sinks.append(json.dumps(sink.snapshot(), sort_keys=True))
        assert sinks[0] == sinks[1]
